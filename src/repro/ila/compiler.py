"""Compiling ILA instructions into pre/postconditions over a sketch trace.

This implements the Figure 8 translation: each instruction's ``SetDecode``
becomes an assumed precondition and each ``SetUpdate`` becomes an asserted
postcondition, with the abstraction function ``α`` substituting architectural
state by datapath state at the right timesteps (Section 3.3's
``Pre_j[s_spec := α(s_0)]`` and ``Post_j[s_spec := α(s_1 .. s_k)]``).

Memory updates are compared extensionally: for each memory postcondition a
fresh universally-quantified address is introduced and the datapath memory at
the write timestep must agree with the specified ``Store``-chain at that
address.  State elements the instruction does not update receive automatic
frame conditions (ILA semantics: unspecified state is unchanged) — this is
what forces the synthesizer to drive ``mem_write``/``jump`` to 0 in the
paper's Figure 7 example.
"""

from __future__ import annotations

from repro.ila import ast
from repro.abstraction.model import AbstractionError
from repro.oyster.memory import ConstMemory
from repro.smt import terms as T

__all__ = ["ConstraintCompiler", "CompiledInstruction", "CompileError"]


class CompileError(Exception):
    """Raised when a spec cannot be compiled against a sketch trace."""


class CompiledInstruction:
    """Constraints for one instruction over one symbolic trace."""

    def __init__(self, instruction, precondition, assumptions,
                 postconditions, frame_conditions):
        self.instruction = instruction
        self.precondition = precondition
        self.assumptions = tuple(assumptions)
        self.postconditions = tuple(postconditions)  # (label, term)
        self.frame_conditions = tuple(frame_conditions)  # (label, term)

    @property
    def all_posts(self):
        return self.postconditions + self.frame_conditions

    def antecedent(self):
        """Precondition conjoined with the abstraction-function assumptions."""
        return T.and_(self.precondition, *self.assumptions)

    def consequent(self):
        return T.and_(*[term for _, term in self.all_posts])

    def formula(self):
        """``(pre ∧ assumes) → (posts ∧ frames)`` as a single term."""
        return T.implies(self.antecedent(), self.consequent())


class _StoreView:
    """Memory view for a Store chain: read(a) folds the chain."""

    def __init__(self, inner, addr, data):
        self.inner = inner
        self.addr = addr
        self.data = data

    def read(self, addr):
        return T.bv_ite(
            T.bv_eq(addr, self.addr), self.data, self.inner.read(addr)
        )


class _IteView:
    def __init__(self, cond, then, els):
        self.cond = cond
        self.then = then
        self.els = els

    def read(self, addr):
        return T.bv_ite(self.cond, self.then.read(addr), self.els.read(addr))


class ConstraintCompiler:
    """Compiles instructions of ``spec`` against a symbolic ``trace``.

    One compiler instance is built per (spec, abstraction, trace) triple; the
    trace's free symbols determine the universally quantified state.
    """

    def __init__(self, spec, alpha, trace, prefix=""):
        self.spec = spec
        self.alpha = alpha
        self.trace = trace
        self.prefix = prefix
        self._fresh_counter = 0
        self._memo = {}
        self.fresh_addresses = []

    # -- public API ---------------------------------------------------------

    def compile_instruction(self, instruction):
        if instruction.decode is None:
            raise CompileError(
                f"instruction {instruction.name!r} has no decode"
            )
        precondition = self._compile(instruction.decode, "data")
        assumptions = []
        for signal, time in self.alpha.assumes:
            value = self.trace.wire_at(signal, time)
            if value.width != 1:
                raise CompileError(
                    f"assumed signal {signal!r} must have width 1"
                )
            assumptions.append(value)
        postconditions = []
        for state, update in instruction.updates:
            postconditions.append(
                (state.name, self._compile_update(state, update))
            )
        frame_conditions = self._frames(instruction)
        return CompiledInstruction(
            instruction, precondition, assumptions, postconditions,
            frame_conditions,
        )

    def compile_expr(self, expr):
        """Compile a free-standing spec expression (decode fields, tests)."""
        return self._compile(expr, "data")

    # -- updates and frames -------------------------------------------------

    def _compile_update(self, state, update):
        if isinstance(state, ast.MemVar):
            mapping = self.alpha.entry(state.name, role="data")
            write_time = mapping.write_time
            if write_time is None:
                raise CompileError(
                    f"memory {state.name!r} is updated by the spec but its "
                    f"abstraction entry has no write effect"
                )
            datapath_mem = self.trace.mem_after(mapping.dp_name, write_time)
            spec_view = self._compile_mem(update, "data")
            address = self._fresh_address(state.name, mapping)
            return T.bv_eq(datapath_mem.read(address),
                           spec_view.read(address))
        mapping = self.alpha.entry(state.name, role="data")
        write_time = mapping.write_time
        if write_time is None:
            raise CompileError(
                f"state {state.name!r} is updated by the spec but its "
                f"abstraction entry has no write effect"
            )
        new_value = self._datapath_value(mapping, write_time, after=True)
        spec_value = self._compile(update, "data")
        return T.bv_eq(new_value, spec_value)

    def _frames(self, instruction):
        frames = []
        seen = set()
        for state_name, var in list(self.spec.states.items()) + list(
            self.spec.memories.items()
        ):
            if instruction.updates_state(state_name):
                continue
            if isinstance(var, ast.MemVar) and var.kind == "memconst":
                continue
            if not self.alpha.has_entry(state_name):
                continue
            for mapping in self.alpha.entries_for(state_name):
                if mapping.write_time is None:
                    continue  # read-only view: nothing to frame
                key = (state_name, mapping.dp_name)
                if key in seen:
                    continue
                seen.add(key)
                frames.append(
                    (f"frame:{state_name}", self._frame_condition(var, mapping))
                )
        return frames

    def _frame_condition(self, var, mapping):
        read_time = mapping.read_time or 1
        write_time = mapping.write_time
        if isinstance(var, ast.MemVar):
            old = self.trace.mem_before(mapping.dp_name, read_time)
            new = self.trace.mem_after(mapping.dp_name, write_time)
            address = self._fresh_address(var.name, mapping)
            return T.bv_eq(new.read(address), old.read(address))
        old = self._datapath_value(mapping, read_time, after=False)
        new = self._datapath_value(mapping, write_time, after=True)
        return T.bv_eq(new, old)

    def _fresh_address(self, spec_name, mapping):
        self._fresh_counter += 1
        address = T.bv_var(
            f"{self.prefix}addr!{spec_name}!{self._fresh_counter}",
            _mem_addr_width(self, mapping),
        )
        self.fresh_addresses.append(address)
        return address

    # -- α resolution -----------------------------------------------------------

    def _datapath_value(self, mapping, time, after):
        name = mapping.dp_name
        if mapping.dp_type == "input":
            return self.trace.input_at(name, time)
        if mapping.dp_type == "register":
            if after:
                return self.trace.reg_after(name, time)
            return self.trace.reg_before(name, time)
        if mapping.dp_type == "output":
            return self.trace.wire_at(name, time)
        raise AbstractionError(
            f"cannot take a value of datapath {mapping.dp_type} {name!r}"
        )

    def _spec_var_value(self, var, role):
        mapping = self.alpha.entry(var.name, role=role)
        read_time = mapping.read_time
        if read_time is None:
            raise CompileError(
                f"spec element {var.name!r} is read but its abstraction "
                f"entry has no read effect"
            )
        return self._datapath_value(mapping, read_time, after=False)

    def _spec_mem_view(self, var, role):
        if var.kind == "memconst":
            return ConstMemory(
                var.name, var.addr_width, var.data_width, var.table
            )
        mapping = self.alpha.entry(var.name, role=role)
        read_time = mapping.read_time
        if read_time is None:
            raise CompileError(
                f"spec memory {var.name!r} is read but its abstraction "
                f"entry has no read effect"
            )
        if mapping.dp_type != "memory":
            raise CompileError(
                f"spec memory {var.name!r} maps to non-memory "
                f"{mapping.dp_name!r}"
            )
        return self.trace.mem_before(mapping.dp_name, read_time)

    # -- expression compilation ---------------------------------------------------

    def _compile(self, expr, role):
        memo = self._memo
        key = (id(expr), role)
        if key in memo:
            return memo[key]
        fetch = self.spec.fetch_expr
        if fetch is not None and expr is fetch and role != "fetch":
            result = self._compile(expr, "fetch")
            memo[key] = result
            return result
        result = self._compile_node(expr, role)
        memo[key] = result
        return result

    def _compile_node(self, expr, role):
        if isinstance(expr, ast.BvConst):
            return T.bv_const(expr.value, expr.width)
        if isinstance(expr, ast.BvVar):
            return self._spec_var_value(expr, role)
        if isinstance(expr, ast.Unop):
            arg = self._compile(expr.arg, role)
            if expr.op == "~":
                return T.bv_not(arg)
            return T.bv_neg(arg)
        if isinstance(expr, ast.Binop):
            left = self._compile(expr.left, role)
            right = self._compile(expr.right, role)
            return _BINOPS[expr.op](left, right)
        if isinstance(expr, ast.IteExpr):
            return T.bv_ite(
                self._compile(expr.cond, role),
                self._compile(expr.then, role),
                self._compile(expr.els, role),
            )
        if isinstance(expr, ast.ExtractExpr):
            return T.bv_extract(self._compile(expr.arg, role), expr.high,
                                expr.low)
        if isinstance(expr, ast.ConcatExpr):
            return T.bv_concat(self._compile(expr.high, role),
                               self._compile(expr.low, role))
        if isinstance(expr, ast.LoadExpr):
            view = self._compile_mem(expr.mem, role)
            addr = self._compile(expr.addr, role)
            return view.read(addr)
        raise CompileError(f"cannot compile {type(expr).__name__}")

    def _compile_mem(self, expr, role):
        if isinstance(expr, ast.MemVar):
            return self._spec_mem_view(expr, role)
        if isinstance(expr, ast.StoreExpr):
            return _StoreView(
                self._compile_mem(expr.mem, role),
                self._compile(expr.addr, role),
                self._compile(expr.data, role),
            )
        if isinstance(expr, ast.MemIteExpr):
            return _IteView(
                self._compile(expr.cond, role),
                self._compile_mem(expr.then, role),
                self._compile_mem(expr.els, role),
            )
        raise CompileError(
            f"cannot compile memory expression {type(expr).__name__}"
        )


def _mem_addr_width(compiler, mapping):
    memory = compiler.trace.mem_before(
        mapping.dp_name, mapping.read_time or 1
    )
    return memory.addr_width


_BINOPS = {
    "&": T.bv_and,
    "|": T.bv_or,
    "^": T.bv_xor,
    "+": T.bv_add,
    "-": T.bv_sub,
    "*": T.bv_mul,
    "<<": T.bv_shl,
    ">>u": T.bv_lshr,
    ">>s": T.bv_ashr,
    "==": T.bv_eq,
    "!=": T.bv_ne,
    "<u": T.bv_ult,
    "<=u": T.bv_ule,
    ">u": T.bv_ugt,
    ">=u": T.bv_uge,
    "<s": T.bv_slt,
    "<=s": T.bv_sle,
    ">s": T.bv_sgt,
    ">=s": T.bv_sge,
}
