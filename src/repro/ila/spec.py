"""The ILA container: state declarations, instructions, fetch, decode fields.

Mirrors the ILAng API used in the paper's listings::

    ila = Ila("alu_ila")
    op = ila.new_bv_input("op", 2)
    regs = ila.new_mem_state("regs", 2, 8)
    add = ila.new_instr("ADD")
    add.set_decode(op == BvConst(1, 2))
    add.set_update(regs, Store(regs, dest, rs1_val + rs2_val))

Two additions support the synthesis toolchain:

* ``set_fetch(expr)`` marks the instruction-fetch expression (ILA's fetch
  function); loads *inside* it resolve to the abstraction function's
  read-only memory entry (e.g. ``i_mem``) rather than the data entry.
* ``declare_decode_field(name, expr)`` names sub-expressions of the decode
  logic (opcode, funct3, ...).  The control-union code generator renders
  instruction preconditions over these names, bound to datapath wires via
  the abstraction function.
"""

from __future__ import annotations

from repro.ila import ast

__all__ = ["Ila", "Instruction", "SpecError"]


class SpecError(Exception):
    """Raised for malformed ILA specifications."""


class Instruction:
    """One ILA instruction: a decode condition plus state updates."""

    def __init__(self, name, ila):
        self.name = name
        self.ila = ila
        self.decode = None
        self.updates = []  # (state var, update expr) in declaration order
        self._updated_names = set()

    def set_decode(self, expr):
        """Define when this instruction applies (must have width 1)."""
        if self.decode is not None:
            raise SpecError(f"instruction {self.name!r} has two decodes")
        if not isinstance(expr, ast.BvExpr) or expr.width != 1:
            raise SpecError(
                f"decode of {self.name!r} must be a width-1 expression"
            )
        self.decode = expr
        return self

    def set_update(self, state, expr):
        """Define the next value of one state element."""
        if isinstance(state, ast.MemVar):
            if state.kind == "memconst":
                raise SpecError(
                    f"{self.name!r} cannot update read-only memory "
                    f"{state.name!r}"
                )
            if not isinstance(expr, ast.MemExpr):
                raise SpecError(
                    f"update of memory {state.name!r} must be memory-valued"
                )
        elif isinstance(state, ast.BvVar):
            if state.kind != "state":
                raise SpecError(
                    f"{self.name!r} cannot update input {state.name!r}"
                )
            if not isinstance(expr, ast.BvExpr) or expr.width != state.width:
                raise SpecError(
                    f"update of {state.name!r} must have width {state.width}"
                )
        else:
            raise SpecError(f"cannot update {state!r}")
        if state.name in self._updated_names:
            raise SpecError(
                f"instruction {self.name!r} updates {state.name!r} twice"
            )
        self._updated_names.add(state.name)
        self.updates.append((state, expr))
        return self

    def updates_state(self, name):
        return name in self._updated_names

    def __repr__(self):
        return f"<Instruction {self.name}>"

    # ILAng-style aliases
    SetDecode = set_decode
    SetUpdate = set_update


class Ila:
    """An instruction-level abstraction of a processor or accelerator."""

    def __init__(self, name):
        self.name = name
        self.inputs = {}
        self.states = {}
        self.memories = {}
        self.instructions = []
        self.fetch_expr = None
        self.decode_fields = {}  # name -> BvExpr

    # -- declarations -----------------------------------------------------

    def _claim(self, name):
        if (name in self.inputs or name in self.states
                or name in self.memories):
            raise SpecError(f"duplicate declaration {name!r}")

    def new_bv_input(self, name, width):
        self._claim(name)
        var = ast.BvVar(name, width, "input")
        self.inputs[name] = var
        return var

    def new_bv_state(self, name, width):
        self._claim(name)
        var = ast.BvVar(name, width, "state")
        self.states[name] = var
        return var

    def new_mem_state(self, name, addr_width, data_width):
        self._claim(name)
        var = ast.MemVar(name, addr_width, data_width, "mem")
        self.memories[name] = var
        return var

    def new_mem_const(self, name, addr_width, data_width, table):
        """A read-only memory with known contents (AES lookup tables)."""
        self._claim(name)
        var = ast.MemVar(name, addr_width, data_width, "memconst",
                         table=dict(table) if isinstance(table, dict)
                         else dict(enumerate(table)))
        self.memories[name] = var
        return var

    # ILAng-style aliases
    NewBvInput = new_bv_input
    NewBvState = new_bv_state
    NewMemState = new_mem_state
    NewMemConst = new_mem_const

    # -- instructions --------------------------------------------------------

    def new_instr(self, name):
        if any(instr.name == name for instr in self.instructions):
            raise SpecError(f"duplicate instruction {name!r}")
        instr = Instruction(name, self)
        self.instructions.append(instr)
        return instr

    NewInstr = new_instr

    def instr(self, name):
        for instruction in self.instructions:
            if instruction.name == name:
                return instruction
        raise SpecError(f"no instruction named {name!r}")

    # -- fetch / decode fields --------------------------------------------------

    def set_fetch(self, expr):
        """The fetch expression; loads inside it use the fetch memory entry."""
        if not isinstance(expr, ast.BvExpr):
            raise SpecError("fetch must be a bitvector expression")
        self.fetch_expr = expr
        return expr

    SetFetch = set_fetch

    def declare_decode_field(self, name, expr):
        """Name a decode sub-expression for code generation (e.g. 'opcode')."""
        if name in self.decode_fields:
            raise SpecError(f"duplicate decode field {name!r}")
        if not isinstance(expr, ast.BvExpr):
            raise SpecError("decode fields must be bitvector expressions")
        self.decode_fields[name] = expr
        return expr

    # -- validation ------------------------------------------------------------

    def validate(self):
        """Check every instruction has a decode; returns self."""
        for instruction in self.instructions:
            if instruction.decode is None:
                raise SpecError(
                    f"instruction {instruction.name!r} has no decode"
                )
        if not self.instructions:
            raise SpecError(f"ILA {self.name!r} has no instructions")
        return self

    def __repr__(self):
        return (
            f"<Ila {self.name}: {len(self.instructions)} instructions, "
            f"{len(self.states) + len(self.memories)} state elements>"
        )
