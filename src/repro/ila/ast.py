"""Expression nodes for ILA specifications.

Unlike Oyster expressions (which are anonymous hardware), ILA expressions
describe architecture-level semantics: they reference named inputs and state
variables, may load/store memory state, and know their own widths.  Memory-
typed expressions (``Store`` chains, memory ``Ite``) describe whole-memory
values for ``SetUpdate``.

Operator overloading covers the common cases; named constructors exist for
everything (``Load``, ``Store``, ``Ite``, ``Extract``, ``Concat``, ``ZExt``,
``SExt``, ``And``, ``Or``, ``Not``, ``Implies``).
"""

from __future__ import annotations

__all__ = [
    "IlaExpr",
    "BvExpr",
    "MemExpr",
    "BvConst",
    "BvVar",
    "MemVar",
    "Binop",
    "Unop",
    "IteExpr",
    "ExtractExpr",
    "ConcatExpr",
    "LoadExpr",
    "StoreExpr",
    "MemIteExpr",
    "Load",
    "Store",
    "Ite",
    "Extract",
    "Concat",
    "ZExt",
    "SExt",
    "And",
    "Or",
    "Not",
    "Implies",
]


class IlaExpr:
    """Base for all ILA expressions."""

    __slots__ = ()


class BvExpr(IlaExpr):
    """A bitvector-valued expression; subclasses set ``width``."""

    __slots__ = ()

    # -- operator sugar ------------------------------------------------------

    def _coerce(self, other):
        if isinstance(other, BvExpr):
            return other
        if isinstance(other, int):
            return BvConst(other, self.width)
        raise TypeError(f"cannot use {other!r} in an ILA expression")

    def __add__(self, other):
        return Binop("+", self, self._coerce(other))

    def __radd__(self, other):
        return Binop("+", self._coerce(other), self)

    def __sub__(self, other):
        return Binop("-", self, self._coerce(other))

    def __rsub__(self, other):
        return Binop("-", self._coerce(other), self)

    def __mul__(self, other):
        return Binop("*", self, self._coerce(other))

    def __and__(self, other):
        return Binop("&", self, self._coerce(other))

    def __or__(self, other):
        return Binop("|", self, self._coerce(other))

    def __xor__(self, other):
        return Binop("^", self, self._coerce(other))

    def __invert__(self):
        return Unop("~", self)

    def __eq__(self, other):
        return Binop("==", self, self._coerce(other))

    def __ne__(self, other):
        return Binop("!=", self, self._coerce(other))

    def __lt__(self, other):
        return Binop("<u", self, self._coerce(other))

    def __le__(self, other):
        return Binop("<=u", self, self._coerce(other))

    def __gt__(self, other):
        return Binop(">u", self, self._coerce(other))

    def __ge__(self, other):
        return Binop(">=u", self, self._coerce(other))

    def slt(self, other):
        return Binop("<s", self, self._coerce(other))

    def sle(self, other):
        return Binop("<=s", self, self._coerce(other))

    def sgt(self, other):
        return Binop(">s", self, self._coerce(other))

    def sge(self, other):
        return Binop(">=s", self, self._coerce(other))

    def shl(self, other):
        return Binop("<<", self, self._coerce(other))

    def lshr(self, other):
        return Binop(">>u", self, self._coerce(other))

    def ashr(self, other):
        return Binop(">>s", self, self._coerce(other))

    def __hash__(self):
        return id(self)

    def __bool__(self):
        raise TypeError(
            "ILA expressions have no truth value; use And/Or/Not"
        )


class MemExpr(IlaExpr):
    """A memory-valued expression (for SetUpdate of memory state)."""

    __slots__ = ()

    def __hash__(self):
        return id(self)


class BvConst(BvExpr):
    __slots__ = ("value", "width")

    def __init__(self, value, width):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.value = value & ((1 << width) - 1)
        self.width = width

    def __repr__(self):
        return f"BvConst({self.value:#x}, {self.width})"


class BvVar(BvExpr):
    """A named bitvector input or state variable (create via ``Ila``)."""

    __slots__ = ("name", "width", "kind")

    def __init__(self, name, width, kind):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.name = name
        self.width = width
        self.kind = kind  # "input" or "state"

    def __repr__(self):
        return f"BvVar({self.name}:{self.kind}/{self.width})"


class MemVar(MemExpr):
    """A named memory state variable (create via ``Ila``)."""

    __slots__ = ("name", "addr_width", "data_width", "kind", "table")

    def __init__(self, name, addr_width, data_width, kind="mem", table=None):
        self.name = name
        self.addr_width = addr_width
        self.data_width = data_width
        self.kind = kind  # "mem" or "memconst"
        self.table = table

    def __repr__(self):
        return f"MemVar({self.name}:{self.addr_width}->{self.data_width})"


class Binop(BvExpr):
    __slots__ = ("op", "left", "right", "width")

    _BIT_RESULTS = frozenset(
        {"==", "!=", "<u", "<=u", ">u", ">=u", "<s", "<=s", ">s", ">=s"}
    )

    def __init__(self, op, left, right):
        if left.width != right.width:
            raise ValueError(
                f"width mismatch in {op!r}: {left.width} vs {right.width}"
            )
        self.op = op
        self.left = left
        self.right = right
        self.width = 1 if op in self._BIT_RESULTS else left.width


class Unop(BvExpr):
    __slots__ = ("op", "arg", "width")

    def __init__(self, op, arg):
        self.op = op  # "~" or "-"
        self.arg = arg
        self.width = arg.width


class IteExpr(BvExpr):
    __slots__ = ("cond", "then", "els", "width")

    def __init__(self, cond, then, els):
        if cond.width != 1:
            raise ValueError("ite condition must have width 1")
        if then.width != els.width:
            raise ValueError(
                f"ite branch widths differ: {then.width} vs {els.width}"
            )
        self.cond = cond
        self.then = then
        self.els = els
        self.width = then.width


class ExtractExpr(BvExpr):
    __slots__ = ("arg", "high", "low", "width")

    def __init__(self, arg, high, low):
        if not (0 <= low <= high < arg.width):
            raise ValueError(
                f"extract [{high}:{low}] out of range for width {arg.width}"
            )
        self.arg = arg
        self.high = high
        self.low = low
        self.width = high - low + 1


class ConcatExpr(BvExpr):
    __slots__ = ("high", "low", "width")

    def __init__(self, high, low):
        self.high = high
        self.low = low
        self.width = high.width + low.width


class LoadExpr(BvExpr):
    __slots__ = ("mem", "addr", "width")

    def __init__(self, mem, addr):
        if not isinstance(mem, MemExpr):
            raise TypeError("Load requires a memory expression")
        if addr.width != _addr_width(mem):
            raise ValueError(
                f"load address width {addr.width}, expected "
                f"{_addr_width(mem)}"
            )
        self.mem = mem
        self.addr = addr
        self.width = _data_width(mem)


class StoreExpr(MemExpr):
    __slots__ = ("mem", "addr", "data")

    def __init__(self, mem, addr, data):
        if not isinstance(mem, MemExpr):
            raise TypeError("Store requires a memory expression")
        if addr.width != _addr_width(mem):
            raise ValueError("store address width mismatch")
        if data.width != _data_width(mem):
            raise ValueError("store data width mismatch")
        self.mem = mem
        self.addr = addr
        self.data = data

    @property
    def addr_width(self):
        return _addr_width(self.mem)

    @property
    def data_width(self):
        return _data_width(self.mem)


class MemIteExpr(MemExpr):
    """Conditional between two memory values (e.g. skip-store when rd==0)."""

    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els):
        if cond.width != 1:
            raise ValueError("memory ite condition must have width 1")
        if (_addr_width(then) != _addr_width(els)
                or _data_width(then) != _data_width(els)):
            raise ValueError("memory ite branches have different shapes")
        self.cond = cond
        self.then = then
        self.els = els

    @property
    def addr_width(self):
        return _addr_width(self.then)

    @property
    def data_width(self):
        return _data_width(self.then)


def _addr_width(mem):
    return mem.addr_width


def _data_width(mem):
    return mem.data_width


# ---------------------------------------------------------------------------
# Named constructors (ILAng-style API)
# ---------------------------------------------------------------------------


def Load(mem, addr):
    return LoadExpr(mem, addr)


def Store(mem, addr, data):
    return StoreExpr(mem, addr, data)


def Ite(cond, then, els):
    if isinstance(then, MemExpr):
        return MemIteExpr(cond, then, els)
    return IteExpr(cond, then, els)


def Extract(arg, high, low):
    return ExtractExpr(arg, high, low)


def Concat(high, low):
    return ConcatExpr(high, low)


def ZExt(arg, width):
    if width < arg.width:
        raise ValueError("ZExt target narrower than source")
    if width == arg.width:
        return arg
    return ConcatExpr(BvConst(0, width - arg.width), arg)


def SExt(arg, width):
    if width < arg.width:
        raise ValueError("SExt target narrower than source")
    if width == arg.width:
        return arg
    sign = ExtractExpr(arg, arg.width - 1, arg.width - 1)
    pad = sign
    for _ in range(width - arg.width - 1):
        pad = ConcatExpr(sign, pad)
    return ConcatExpr(pad, arg)


def And(*args):
    result = None
    for arg in args:
        if arg.width != 1:
            raise ValueError("And operands must have width 1")
        result = arg if result is None else Binop("&", result, arg)
    if result is None:
        return BvConst(1, 1)
    return result


def Or(*args):
    result = None
    for arg in args:
        if arg.width != 1:
            raise ValueError("Or operands must have width 1")
        result = arg if result is None else Binop("|", result, arg)
    if result is None:
        return BvConst(0, 1)
    return result


def Not(arg):
    if arg.width != 1:
        raise ValueError("Not operand must have width 1")
    return Unop("~", arg)


def Implies(a, b):
    return Or(Not(a), b)
