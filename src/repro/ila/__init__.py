"""An Instruction-Level Abstraction (ILA) modelling library.

Re-implements the modelling subset of the ILAng C++ library that the paper's
specifications use (Section 2.1): bitvector inputs and state, memory state,
instructions with ``SetDecode``/``SetUpdate``, hierarchical fetch
expressions, and ``MemConst`` read-only memories.  The compiler
(``repro.ila.compiler``) implements the Figure 8 translation from decode and
update expressions into assume/assert constraints over a symbolically
evaluated datapath sketch, parameterized by an abstraction function.
"""

from repro.ila.ast import (
    IlaExpr,
    BvConst,
    Load,
    Store,
    Ite,
    Extract,
    Concat,
    ZExt,
    SExt,
    And,
    Or,
    Not,
    Implies,
)
from repro.ila.spec import Ila, Instruction, SpecError

__all__ = [
    "IlaExpr",
    "BvConst",
    "Load",
    "Store",
    "Ite",
    "Extract",
    "Concat",
    "ZExt",
    "SExt",
    "And",
    "Or",
    "Not",
    "Implies",
    "Ila",
    "Instruction",
    "SpecError",
]
