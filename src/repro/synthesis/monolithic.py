"""Monolithic control logic synthesis: the unoptimized Equation (1).

One symbolic evaluation of the sketch; one formula conjoining every
instruction's ``pre → post``; holes filled with an if-then-else expression
over the decode preconditions whose leaves are per-instruction constants —
the same expression grammar the control union ⊔ targets, but solved in a
single ∃∀ query.  This reproduces the scaling blow-up of the paper's
Table 1 † rows: the verify step of CEGIS must reason about all instructions'
datapaths at once, and RV32I at 37 instructions exceeds any reasonable
budget while 3-instruction AES merely slows down.
"""

from __future__ import annotations

import time

from repro.ila.compiler import ConstraintCompiler
from repro.oyster.symbolic import SymbolicEvaluator
from repro.smt import terms as T
from repro.smt.backends import resolve_solver_config
from repro.synthesis.cegis import cegis_solve, CegisStats
from repro.synthesis.incremental import resolve_pipeline
from repro.synthesis.result import InstructionSolution, SynthesisError

__all__ = ["synthesize_monolithic_solutions"]


def synthesize_monolithic_solutions(problem, timeout=None,
                                    max_iterations=256, budget=None,
                                    retry_policy=None,
                                    execution=None,
                                    worker_pool=None, pipeline=None,
                                    config=None, backend=None):
    """Solve all instructions in one CEGIS query.

    Returns ``(solutions, stats)`` where ``solutions`` is one
    ``InstructionSolution`` per instruction (so the control union applies
    unchanged downstream).  ``budget``/``retry_policy`` are threaded into
    the underlying CEGIS run; ``config``/``backend`` select the decision
    procedure (``execution``/``worker_pool``/``pipeline`` are the
    deprecated spellings).

    ``pipeline="incremental"`` reuses the problem's shared
    :class:`~repro.synthesis.incremental.TraceCache` evaluation (instead
    of a private ``m!``-prefixed one) and runs the assumption-based CEGIS
    verify.  Conjoining the per-instruction formulas over the shared
    trace is sound because ∀ distributes over ∧: each conjunct constrains
    the shared state exactly as its standalone query would.
    """
    started = time.monotonic()
    spec = problem.spec
    config = resolve_solver_config(config, backend=backend,
                                   execution=execution,
                                   worker_pool=worker_pool,
                                   pipeline=pipeline)
    pipeline = resolve_pipeline(config.pipeline)
    if pipeline == "incremental":
        entry = problem.trace_cache().entry(problem)
        prefix = entry.prefix
        trace = entry.trace
        compiled = [
            entry.compiled[instruction.name]
            for instruction in spec.instructions
        ]
        # Shared side conditions plus every instruction's fresh-read
        # delta; the restored fresh counter makes cross-instruction
        # duplicates identical interned terms, so dedup keeps the
        # conjunction linear.
        side_terms = list(entry.base_conditions)
        for instruction in spec.instructions:
            side_terms.extend(entry.deltas[instruction.name])
        side_terms = list(dict.fromkeys(side_terms))
    else:
        prefix = "m!"
        evaluator = SymbolicEvaluator(
            problem.sketch, const_mems=problem.const_mems, prefix=prefix
        )
        trace = evaluator.run(problem.alpha.cycles)
        compiler = ConstraintCompiler(spec, problem.alpha, trace,
                                      prefix=prefix)
        compiled = [
            compiler.compile_instruction(instruction)
            for instruction in spec.instructions
        ]
        side_terms = list(trace.side_conditions)

    # The holes must not influence the decode preconditions (the no-feedback
    # condition); otherwise the if-tree construction below is circular.
    hole_names = {
        term.name for term in trace.hole_values.values() if term.is_var
    }
    for item in compiled:
        decode_vars = {v.name for v in T.free_variables(item.precondition)}
        overlap = decode_vars & hole_names
        if overlap:
            raise SynthesisError(
                f"instruction {item.instruction.name!r} has a decode that "
                f"depends on holes {sorted(overlap)}; Equation (1) requires "
                "control-free preconditions"
            )

    # Existential variables: one constant per (instruction, hole).
    constants = {}
    for j, instruction in enumerate(spec.instructions):
        for hole in problem.sketch.holes:
            constants[(j, hole.name)] = T.bv_var(
                f"{prefix}c{j}!{hole.name}", hole.width
            )

    # Fill each hole with ite(pre_0, c_0, ite(pre_1, c_1, ... c_last)).
    substitution = {}
    for hole in problem.sketch.holes:
        expr = constants[(len(spec.instructions) - 1, hole.name)]
        for j in range(len(spec.instructions) - 2, -1, -1):
            expr = T.bv_ite(compiled[j].precondition,
                            constants[(j, hole.name)], expr)
        substitution[trace.hole_values[hole.name]] = expr

    side = T.and_(*side_terms)
    conjunction = T.and_(
        *[item.formula() for item in compiled]
    )
    formula = T.implies(side, conjunction)
    formula = T.substitute(formula, substitution)

    stats = CegisStats()
    values = cegis_solve(
        formula, list(constants.values()), timeout=timeout, stats=stats,
        max_iterations=max_iterations, budget=budget,
        retry_policy=retry_policy, config=config,
        incremental=(pipeline == "incremental"),
    )
    elapsed = time.monotonic() - started
    solutions = []
    for j, instruction in enumerate(spec.instructions):
        solutions.append(
            InstructionSolution(
                instruction_name=instruction.name,
                hole_values={
                    hole.name: values[constants[(j, hole.name)].name]
                    for hole in problem.sketch.holes
                },
                iterations=stats.iterations,
                solve_time=elapsed / len(spec.instructions),
                conflicts=stats.conflicts // len(spec.instructions),
                retries=stats.retries,
            )
        )
    return solutions, stats
