"""Counterexample-guided inductive synthesis over the QF_BV solver.

This is the decision procedure for the ∃holes ∀state formulas of
Equation (1)/(2).  Rosette's ``synthesize`` runs the same loop internally;
here it is explicit:

1. *verify*: with the current hole candidate substituted, ask the solver for
   a state falsifying the formula.  UNSAT means the candidate is correct.
2. *guess*: substitute the counterexample state into the formula (constant
   folding collapses the datapath almost entirely) and add it as a
   constraint on the hole variables; ask for a new candidate.

The guess solver is incremental — every counterexample stays, so candidates
monotonically improve.  Both sides respect a wall-clock deadline so Table 1's
timeout rows reproduce faithfully.
"""

from __future__ import annotations

import time

from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNSAT, UNKNOWN
from repro.synthesis.result import SynthesisFailure, SynthesisTimeout

__all__ = ["cegis_solve", "CegisStats"]


class CegisStats:
    """Counters for one CEGIS run (exposed in synthesis results)."""

    def __init__(self):
        self.iterations = 0
        self.verify_time = 0.0
        self.guess_time = 0.0
        self.verify_conflicts = 0

    def as_dict(self):
        return {
            "iterations": self.iterations,
            "verify_time": self.verify_time,
            "guess_time": self.guess_time,
            "verify_conflicts": self.verify_conflicts,
        }


def cegis_solve(formula, hole_vars, max_iterations=256, timeout=None,
                stats=None, initial_candidate=None, partial_eval=True):
    """Find ints for ``hole_vars`` making ``formula`` valid for all states.

    ``formula`` is a width-1 term whose free variables are ``hole_vars``
    plus the universally quantified state.  Returns ``{hole name: int}``.

    ``partial_eval`` controls whether the verify step substitutes the
    candidate constants into the formula (letting the rewriting constructors
    collapse the datapath) or merely asserts ``hole == constant`` equalities
    alongside the unreduced formula.  The latter exists for the ablation
    study — it produces the full-datapath queries a rewrite-free evaluator
    would send to the solver.

    Raises ``SynthesisFailure`` if no assignment exists and
    ``SynthesisTimeout`` if the budget is exhausted first.
    """
    if stats is None:
        stats = CegisStats()
    deadline = None if timeout is None else time.monotonic() + timeout
    hole_names = {var.name for var in hole_vars}
    forall_vars = [
        var for var in T.free_variables(formula)
        if var.name not in hole_names
    ]
    candidate = {var.name: 0 for var in hole_vars}
    if initial_candidate:
        candidate.update(initial_candidate)
    hole_by_name = {var.name: var for var in hole_vars}
    guess_solver = Solver()

    for _ in range(max_iterations):
        stats.iterations += 1
        # -- verify ---------------------------------------------------------
        started = time.monotonic()
        verifier = Solver()
        if partial_eval:
            substitution = {
                hole_by_name[name]: T.bv_const(value,
                                               hole_by_name[name].width)
                for name, value in candidate.items()
            }
            verifier.add(T.bv_not(T.substitute(formula, substitution)))
        else:
            verifier.add(T.bv_not(formula))
            for name, value in candidate.items():
                var = hole_by_name[name]
                verifier.add(T.bv_eq(var, T.bv_const(value, var.width)))
        verdict = verifier.check(timeout=_remaining(deadline))
        stats.verify_time += time.monotonic() - started
        stats.verify_conflicts += verifier._sat.conflicts
        if verdict is UNSAT:
            return dict(candidate)
        if verdict is UNKNOWN:
            raise SynthesisTimeout(
                f"verification exceeded the budget after "
                f"{stats.iterations} iterations"
            )
        model = verifier.model()
        counterexample = {
            var: T.bv_const(model.value(var), var.width)
            for var in forall_vars
        }
        # -- guess -----------------------------------------------------------
        started = time.monotonic()
        folded = T.substitute(formula, counterexample)
        guess_solver.add(folded)
        verdict = guess_solver.check(timeout=_remaining(deadline))
        stats.guess_time += time.monotonic() - started
        if verdict is UNSAT:
            raise SynthesisFailure(
                "no hole constants satisfy the specification; the datapath "
                "sketch cannot implement this instruction"
            )
        if verdict is UNKNOWN:
            raise SynthesisTimeout(
                f"candidate search exceeded the budget after "
                f"{stats.iterations} iterations"
            )
        model = guess_solver.model()
        candidate = {
            var.name: model.value(var) for var in hole_vars
        }
    raise SynthesisTimeout(
        f"CEGIS did not converge within {max_iterations} iterations"
    )


def _remaining(deadline):
    if deadline is None:
        return None
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        raise SynthesisTimeout("synthesis wall-clock budget exhausted")
    return remaining
