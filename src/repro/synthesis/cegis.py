"""Counterexample-guided inductive synthesis over the QF_BV solver.

This is the decision procedure for the ∃holes ∀state formulas of
Equation (1)/(2).  Rosette's ``synthesize`` runs the same loop internally;
here it is explicit:

1. *verify*: with the current hole candidate substituted, ask the solver for
   a state falsifying the formula.  UNSAT means the candidate is correct.
2. *guess*: substitute the counterexample state into the formula (constant
   folding collapses the datapath almost entirely) and add it as a
   constraint on the hole variables; ask for a new candidate.

The guess solver is incremental — every counterexample stays, so candidates
monotonically improve.  The verify side has two modes: the default
substitutes the candidate and solves a fresh, folded query; the
``incremental`` mode (see ``repro.synthesis.incremental``) stages each
candidate's folded negation, selector-guarded, into one persistent
per-formula verifier — interned AIG regions, SAT variables and learned
clauses all survive across iterations and instructions, and polish runs
per-hole assumption scans on the same core.  Both sides run under a
cooperative
``repro.runtime.Budget`` (wall clock, conflicts, memory) so Table 1's
timeout rows reproduce faithfully, and every UNKNOWN is typed:

* ``reason="deadline"``/``"memory"`` → :class:`SynthesisTimeout` — more
  attempts cannot help;
* ``reason="conflicts"``/``"injected"`` → retried under the
  :class:`repro.runtime.RetryPolicy` (escalated conflict budget, reseeded
  decision order), then :class:`SolverUnknown` if retries are exhausted;
* a SAT verdict with an out-of-width model (a buggy or fault-injected
  backend) → :class:`MalformedModel`, never silently corrupted control
  logic.
"""

from __future__ import annotations

import contextlib
import time

from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.runtime import (
    Budget,
    BudgetExhausted,
    MalformedModel,
    SolverUnknown,
    run_with_retry,
)
from repro.smt import counters as _counters
from repro.smt import terms as T
from repro.smt.backends import resolve_solver_config
from repro.smt.solver import Solver, SAT, UNSAT, UNKNOWN
from repro.synthesis.incremental import IncrementalContext, candidate_assumptions
from repro.synthesis.result import SynthesisFailure, SynthesisTimeout

__all__ = ["cegis_solve", "CegisStats"]

class CegisStats:
    """Counters for one CEGIS run (exposed in synthesis results).

    The encode counters (``solver_instances``, ``aig_nodes``,
    ``tseitin_clauses``) are deltas of the process-global
    ``repro.smt.counters`` taken across the run — under concurrent
    isolated dispatch they attribute jointly, but serial runs (the bench
    and CI configurations) are exact.
    """

    def __init__(self):
        self.iterations = 0
        self.verify_time = 0.0
        self.guess_time = 0.0
        self.verify_conflicts = 0
        self.guess_conflicts = 0
        self.retries = 0
        self.polish_checks = 0
        self.solver_instances = 0
        self.aig_nodes = 0
        self.tseitin_clauses = 0

    @property
    def conflicts(self):
        return self.verify_conflicts + self.guess_conflicts

    def as_dict(self):
        return {
            "iterations": self.iterations,
            "verify_time": self.verify_time,
            "guess_time": self.guess_time,
            "verify_conflicts": self.verify_conflicts,
            "guess_conflicts": self.guess_conflicts,
            "retries": self.retries,
            "polish_checks": self.polish_checks,
            "solver_instances": self.solver_instances,
            "aig_nodes": self.aig_nodes,
            "tseitin_clauses": self.tseitin_clauses,
        }


def cegis_solve(formula, hole_vars, max_iterations=256, timeout=None,
                stats=None, initial_candidate=None, partial_eval=True,
                budget=None, retry_policy=None, execution=None,
                worker_pool=None, incremental=False, incremental_ctx=None,
                canonicalize=True, config=None, backend=None):
    """Find ints for ``hole_vars`` making ``formula`` valid for all states.

    ``formula`` is a width-1 term whose free variables are ``hole_vars``
    plus the universally quantified state.  Returns ``{hole name: int}``.

    ``partial_eval`` controls whether the verify step substitutes the
    candidate constants into the formula (letting the rewriting constructors
    collapse the datapath) or merely asserts ``hole == constant`` equalities
    alongside the unreduced formula.  The latter exists for the ablation
    study — it produces the full-datapath queries a rewrite-free evaluator
    would send to the solver.

    ``incremental=True`` selects the persistent-verifier mode: each
    candidate's folded ``¬formula`` is staged, selector-guarded, into the
    formula's long-lived verifier inside ``incremental_ctx`` (an
    :class:`repro.synthesis.incremental.IncrementalContext`; a private one
    is created when omitted) and decided under a one-literal selector
    assumption — no per-iteration solver construction, shared interned
    AIG (so shared SAT variables) between consecutive candidates, and
    learned clauses that survive across iterations *and* across
    instructions sharing the context.  Polish opens per-hole scan
    verifiers (``assert_scan``) whose trial values ride as assumption
    bits on a reused trail.  The substitution path
    (``incremental=False``) is retained as the ablation baseline.

    ``canonicalize=True`` (the default) polishes the converged candidate:
    hole bits are greedily zeroed, most-significant first in hole order,
    keeping each flip only if the candidate still verifies.  Don't-care
    bits — where the verify search would otherwise return an arbitrary,
    pipeline-dependent pick — land on a canonical value, so fresh and
    incremental runs synthesize identical control logic (and the control
    union sees fewer spurious groups).  Each polish probe is one verify
    check: an assumption query in incremental mode, a substitution solve
    otherwise.

    ``budget`` is a ``repro.runtime.Budget`` shared by both CEGIS sides
    (``timeout`` is folded into it); ``retry_policy`` governs escalation on
    retryable UNKNOWNs.

    ``config`` (a :class:`repro.smt.backends.SolverConfig`) or ``backend``
    (a registered backend name / instance) selects the decision procedure
    for every solver this run constructs.  ``backend="isolated"`` with a
    ``worker_pool`` runs every check in a sandboxed child process of a
    ``repro.runtime.SolverWorkerPool``: worker deaths surface as retryable
    ``WorkerCrashed``/``WorkerKilled`` faults and flow through the same
    retry machinery as conflict-cap UNKNOWNs, landing each retry on a
    freshly spawned worker.  ``execution``/``worker_pool`` are the
    deprecated PR-2 spellings of the same selection.

    Raises ``SynthesisFailure`` if no assignment exists,
    ``SynthesisTimeout`` if the wall-clock/memory budget is exhausted, and
    ``SolverUnknown`` if the solver gave up for a non-budget reason even
    after retries.
    """
    config = resolve_solver_config(config, backend=backend,
                                   execution=execution,
                                   worker_pool=worker_pool)
    if stats is None:
        stats = CegisStats()
    if incremental and not partial_eval:
        raise ValueError(
            "incremental verify requires partial_eval=True; the "
            "partial_eval=False ablation is the fresh-pipeline baseline"
        )
    if budget is None:
        budget = Budget(timeout=timeout)
    elif timeout is not None:
        budget = budget.child(timeout=timeout)
    encode_before = _counters.snapshot()
    try:
        return _cegis_loop(
            formula, hole_vars, max_iterations, stats, initial_candidate,
            partial_eval, budget, retry_policy, config,
            incremental, incremental_ctx, canonicalize,
        )
    finally:
        encode_delta = _counters.delta_since(encode_before)
        stats.solver_instances += encode_delta["solver_instances"]
        stats.aig_nodes += encode_delta["aig_nodes"]
        stats.tseitin_clauses += encode_delta["tseitin_clauses"]


def _cegis_loop(formula, hole_vars, max_iterations, stats, initial_candidate,
                partial_eval, budget, retry_policy, config,
                incremental, incremental_ctx, canonicalize):
    hole_names = {var.name for var in hole_vars}
    forall_vars = [
        var for var in T.free_variables(formula)
        if var.name not in hole_names
    ]
    candidate = {var.name: 0 for var in hole_vars}
    if initial_candidate:
        candidate.update(initial_candidate)
    hole_by_name = {var.name: var for var in hole_vars}
    guess_blaster = None
    if incremental:
        if incremental_ctx is None:
            incremental_ctx = IncrementalContext(config=config)
        guess_blaster = incremental_ctx.guess_blaster
    guess_solver = Solver(blaster=guess_blaster, **config.solver_kwargs())

    verify_mode = ("incremental" if incremental
                   else "substitution" if partial_eval else "ablation")

    def verify_candidate(cand):
        """One verify check for ``cand``; returns (verdict, verifier)."""
        started = time.monotonic()
        with _obs.span("cegis.verify", mode=verify_mode):
            if incremental and partial_eval:
                # Fold the candidate's constants into the formula — the
                # same datapath collapse the fresh pipeline gets — but
                # decide the query on the formula's *persistent* folded
                # verifier: consecutive candidates' instances share
                # interned AIG nodes (so SAT variables), and learned
                # clauses carry over, which makes repeat proofs nearly
                # free.  The symbolic-hole assumption check was measured
                # and retired here: its full-cone descent floor costs
                # more per check than a folded solve *plus* its encode
                # delta, on every workload shape.
                substitution = {
                    hole_by_name[name]: T.bv_const(
                        value, hole_by_name[name].width)
                    for name, value in cand.items()
                }
                verifier, sel = incremental_ctx.assert_folded(
                    formula, substitution)
                conflicts_before = verifier.conflicts
                verdict = _checked(verifier, budget, retry_policy, stats,
                                   side="verification", assumptions=[sel])
            elif incremental:
                # Rewrite-free ablation shape, incremental spelling: one
                # persistent verifier holds the unreduced ¬formula and
                # each candidate rides in as per-bit hole assumptions.
                verifier = incremental_ctx.verifier_for(formula)
                conflicts_before = verifier.conflicts
                assumptions = candidate_assumptions(hole_by_name, cand)
                verdict = _checked(verifier, budget, retry_policy, stats,
                                   side="verification",
                                   assumptions=assumptions)
            elif partial_eval:
                verifier = Solver(**config.solver_kwargs())
                conflicts_before = 0
                substitution = {
                    hole_by_name[name]: T.bv_const(value,
                                                   hole_by_name[name].width)
                    for name, value in cand.items()
                }
                verifier.add(T.bv_not(T.substitute(formula, substitution)))
                verdict = _checked(verifier, budget, retry_policy, stats,
                                   side="verification")
            else:
                verifier = Solver(**config.solver_kwargs())
                conflicts_before = 0
                verifier.add(T.bv_not(formula))
                for name, value in cand.items():
                    var = hole_by_name[name]
                    verifier.add(T.bv_eq(var, T.bv_const(value, var.width)))
                verdict = _checked(verifier, budget, retry_policy, stats,
                                   side="verification")
        stats.verify_time += time.monotonic() - started
        stats.verify_conflicts += verifier.conflicts - conflicts_before
        return verdict, verifier

    scan_probe = None
    if incremental and partial_eval:
        def scan_probe(var, fixed):
            """Open a per-hole polish scan; returns ``probe(value)``.

            One staged fold (every hole but ``var`` pinned) serves the
            whole scan — each trial value is then a pure assumption
            check whose prefix (selector + the scanned hole's shared low
            bits) the core's trail reuse keeps across probes.
            """
            solver, sel = incremental_ctx.assert_scan(
                formula, fixed, hole_by_name, var.name)
            single = {var.name: var}

            def probe(value):
                started = time.monotonic()
                with _obs.span("cegis.verify", mode=verify_mode):
                    conflicts_before = solver.conflicts
                    assumptions = [sel]
                    assumptions += candidate_assumptions(
                        single, {var.name: value})
                    try:
                        return _checked(solver, budget, retry_policy,
                                        stats, side="verification",
                                        assumptions=assumptions)
                    finally:
                        stats.verify_time += time.monotonic() - started
                        stats.verify_conflicts += (solver.conflicts
                                                   - conflicts_before)

            return probe

    for _ in range(max_iterations):
        stats.iterations += 1
        _METRICS.inc("cegis.iterations")
        iteration_started = time.monotonic()
        with _iteration_timer(iteration_started), \
                _obs.span("cegis.iteration", n=stats.iterations):
            # -- verify -----------------------------------------------------
            verdict, verifier = verify_candidate(candidate)
            if verdict is UNSAT:
                if canonicalize:
                    with _obs.span("cegis.polish"):
                        candidate = _zero_polish(candidate, hole_vars,
                                                 verify_candidate, stats,
                                                 scan_probe)
                return dict(candidate)
            model = verifier.model()
            cex_values = {
                var.name: _validated(model, var, side="verification")
                for var in forall_vars
            }
            counterexample = {
                var: T.bv_const(cex_values[var.name], var.width)
                for var in forall_vars
            }
            _record_counterexample(cex_values, forall_vars, stats)
            # -- guess ------------------------------------------------------
            started = time.monotonic()
            with _obs.span("cegis.guess"):
                folded = T.substitute(formula, counterexample)
                conflicts_before = guess_solver.conflicts
                guess_solver.add(folded)
                verdict = _checked(guess_solver, budget, retry_policy, stats,
                                   side="candidate search")
            stats.guess_time += time.monotonic() - started
            stats.guess_conflicts += (guess_solver.conflicts
                                      - conflicts_before)
            if verdict is UNSAT:
                raise SynthesisFailure(
                    "no hole constants satisfy the specification; the "
                    "datapath sketch cannot implement this instruction"
                )
            model = guess_solver.model()
            candidate = {
                var.name: _validated(model, var, side="candidate search")
                for var in hole_vars
            }
    raise SynthesisTimeout(
        f"CEGIS did not converge within {max_iterations} iterations",
        reason="iterations",
    )


@contextlib.contextmanager
def _iteration_timer(started):
    # Charges the iteration's wall time to the process-wide latency
    # histogram even when the body returns or raises out of the loop.
    try:
        yield
    finally:
        _METRICS.observe("cegis.iteration", time.monotonic() - started)


def _record_counterexample(values, forall_vars, stats):
    """Record a failed verify's counterexample on the active tracer.

    The falsifying state is dumped as a single-timestep VCD under the
    trace's artifact directory, and the ``cegis.counterexample`` event
    carries the path — the bridge from "a verify query came back SAT" to
    "here is the waveform that refuted the candidate".  No tracer, no
    work; a VCD write failure degrades to an event without a path.
    """
    tracer = _obs.active_tracer()
    if tracer is None:
        return
    from repro.oyster import vcd as _vcd

    path = tracer.artifact_path(f"cex-iter{stats.iterations}.vcd")
    try:
        _vcd.write_counterexample_vcd(
            path, values, {var.name: var.width for var in forall_vars}
        )
    except OSError:
        path = None
    tracer.event("cegis.counterexample", iteration=stats.iterations,
                 vars=len(values), vcd=path)


def _zero_polish(candidate, hole_vars, verify_candidate, stats,
                 scan_probe=None):
    """Canonicalize a verified candidate by minimizing each hole's value.

    Walks the holes in their given order; for each, scans values upward
    from 0 and keeps the first one the candidate still verifies with
    (holding the other holes fixed).  Forced holes never change (every
    smaller value fails the check); don't-care and partially-constrained
    holes land on their minimum — the same value regardless of which
    arbitrary pick the search happened to find, making the result
    independent of the pipeline.  Per-bit greedy clearing would not be
    canonical here: a hole whose valid set is e.g. {0, 5} cannot walk
    from 5 to 0 one bit at a time.  Polish is best-effort: a budget
    expiry or solver fault mid-polish keeps the already-verified
    candidate instead of failing the instruction.

    ``scan_probe`` (incremental mode) opens one per-hole scan verifier
    and decides each trial by assumption check; the fallback re-verifies
    full trial candidates through ``verify_candidate``.  Both decide the
    identical query, so the polished values cannot depend on the path.
    """
    candidate = dict(candidate)
    for var in hole_vars:
        if not candidate[var.name]:
            continue
        probe = scan_probe(var, candidate) if scan_probe is not None else None
        for value in range(candidate[var.name]):
            stats.polish_checks += 1
            try:
                if probe is not None:
                    verdict = probe(value)
                else:
                    trial = dict(candidate)
                    trial[var.name] = value
                    verdict, _ = verify_candidate(trial)
            except (SynthesisTimeout, SolverUnknown):
                return candidate
            if verdict is UNSAT:
                candidate = dict(candidate)
                candidate[var.name] = value
                break
    return candidate


def _checked(solver, budget, retry_policy, stats, side, assumptions=()):
    """One budgeted check with retry-with-escalation on retryable UNKNOWNs.

    Returns SAT/UNSAT; budget exhaustion surfaces as ``SynthesisTimeout``
    (with the exhausted cap as ``reason``) and non-budget UNKNOWNs as
    ``SolverUnknown`` once the retry policy gives up.  ``assumptions``
    scope to each attempt (the incremental verify path), so a reseeded
    retry replays them against the same persistent assertions.
    """
    def attempt_check(attempt):
        if attempt.index:
            stats.retries += 1
            _METRICS.inc("cegis.retries")
            _obs.event("cegis.retry", attempt=attempt.index, side=side,
                       max_conflicts=attempt.max_conflicts,
                       seed=attempt.seed)
            if attempt.seed is not None:
                solver.reseed(attempt.seed)
        verdict = solver.check(max_conflicts=attempt.max_conflicts,
                               budget=budget, assumptions=assumptions)
        if verdict == UNKNOWN:
            raise SolverUnknown(
                f"{side} returned unknown ({verdict.reason}) after "
                f"{stats.iterations} iterations",
                reason=verdict.reason,
            )
        return verdict

    try:
        return run_with_retry(attempt_check, retry_policy, budget=budget)
    except SynthesisTimeout:
        raise
    except BudgetExhausted as fault:
        # The budget itself tripped (pre-check or mid-solve): timeout.
        raise SynthesisTimeout(str(fault), reason=fault.reason) from fault
    except SolverUnknown as fault:
        if fault.reason in ("deadline", "memory"):
            raise SynthesisTimeout(str(fault), reason=fault.reason) from fault
        raise


def _validated(model, var, side):
    """Read ``var`` from ``model``, rejecting out-of-width garbage.

    A malformed assignment means the backend (or an injected fault) broke
    the encoding contract; surfacing it as :class:`MalformedModel` lets the
    engine degrade instead of synthesizing corrupt control logic.
    """
    value = model.value(var, warn=False)
    if not isinstance(value, int) or value < 0 or (value >> var.width):
        raise MalformedModel(
            f"{side} model assigns {var.name!r} = {value!r}, which does not "
            f"fit its {var.width}-bit width"
        )
    return value
