"""Counterexample-guided inductive synthesis over the QF_BV solver.

This is the decision procedure for the ∃holes ∀state formulas of
Equation (1)/(2).  Rosette's ``synthesize`` runs the same loop internally;
here it is explicit:

1. *verify*: with the current hole candidate substituted, ask the solver for
   a state falsifying the formula.  UNSAT means the candidate is correct.
2. *guess*: substitute the counterexample state into the formula (constant
   folding collapses the datapath almost entirely) and add it as a
   constraint on the hole variables; ask for a new candidate.

The guess solver is incremental — every counterexample stays, so candidates
monotonically improve.  Both sides run under a cooperative
``repro.runtime.Budget`` (wall clock, conflicts, memory) so Table 1's
timeout rows reproduce faithfully, and every UNKNOWN is typed:

* ``reason="deadline"``/``"memory"`` → :class:`SynthesisTimeout` — more
  attempts cannot help;
* ``reason="conflicts"``/``"injected"`` → retried under the
  :class:`repro.runtime.RetryPolicy` (escalated conflict budget, reseeded
  decision order), then :class:`SolverUnknown` if retries are exhausted;
* a SAT verdict with an out-of-width model (a buggy or fault-injected
  backend) → :class:`MalformedModel`, never silently corrupted control
  logic.
"""

from __future__ import annotations

import time

from repro.runtime import (
    Budget,
    BudgetExhausted,
    MalformedModel,
    SolverUnknown,
    run_with_retry,
)
from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNSAT, UNKNOWN
from repro.synthesis.result import SynthesisFailure, SynthesisTimeout

__all__ = ["cegis_solve", "CegisStats"]


class CegisStats:
    """Counters for one CEGIS run (exposed in synthesis results)."""

    def __init__(self):
        self.iterations = 0
        self.verify_time = 0.0
        self.guess_time = 0.0
        self.verify_conflicts = 0
        self.guess_conflicts = 0
        self.retries = 0

    @property
    def conflicts(self):
        return self.verify_conflicts + self.guess_conflicts

    def as_dict(self):
        return {
            "iterations": self.iterations,
            "verify_time": self.verify_time,
            "guess_time": self.guess_time,
            "verify_conflicts": self.verify_conflicts,
            "guess_conflicts": self.guess_conflicts,
            "retries": self.retries,
        }


def cegis_solve(formula, hole_vars, max_iterations=256, timeout=None,
                stats=None, initial_candidate=None, partial_eval=True,
                budget=None, retry_policy=None, execution="inprocess",
                worker_pool=None):
    """Find ints for ``hole_vars`` making ``formula`` valid for all states.

    ``formula`` is a width-1 term whose free variables are ``hole_vars``
    plus the universally quantified state.  Returns ``{hole name: int}``.

    ``partial_eval`` controls whether the verify step substitutes the
    candidate constants into the formula (letting the rewriting constructors
    collapse the datapath) or merely asserts ``hole == constant`` equalities
    alongside the unreduced formula.  The latter exists for the ablation
    study — it produces the full-datapath queries a rewrite-free evaluator
    would send to the solver.

    ``budget`` is a ``repro.runtime.Budget`` shared by both CEGIS sides
    (``timeout`` is folded into it); ``retry_policy`` governs escalation on
    retryable UNKNOWNs.

    ``execution="isolated"`` runs every solver check in a sandboxed child
    process of ``worker_pool`` (a ``repro.runtime.SolverWorkerPool``):
    worker deaths surface as retryable ``WorkerCrashed``/``WorkerKilled``
    faults and flow through the same retry machinery as conflict-cap
    UNKNOWNs, landing each retry on a freshly spawned worker.

    Raises ``SynthesisFailure`` if no assignment exists,
    ``SynthesisTimeout`` if the wall-clock/memory budget is exhausted, and
    ``SolverUnknown`` if the solver gave up for a non-budget reason even
    after retries.
    """
    if stats is None:
        stats = CegisStats()
    if budget is None:
        budget = Budget(timeout=timeout)
    elif timeout is not None:
        budget = budget.child(timeout=timeout)
    hole_names = {var.name for var in hole_vars}
    forall_vars = [
        var for var in T.free_variables(formula)
        if var.name not in hole_names
    ]
    candidate = {var.name: 0 for var in hole_vars}
    if initial_candidate:
        candidate.update(initial_candidate)
    hole_by_name = {var.name: var for var in hole_vars}
    guess_solver = Solver(execution=execution, worker_pool=worker_pool)

    for _ in range(max_iterations):
        stats.iterations += 1
        # -- verify ---------------------------------------------------------
        started = time.monotonic()
        verifier = Solver(execution=execution, worker_pool=worker_pool)
        if partial_eval:
            substitution = {
                hole_by_name[name]: T.bv_const(value,
                                               hole_by_name[name].width)
                for name, value in candidate.items()
            }
            verifier.add(T.bv_not(T.substitute(formula, substitution)))
        else:
            verifier.add(T.bv_not(formula))
            for name, value in candidate.items():
                var = hole_by_name[name]
                verifier.add(T.bv_eq(var, T.bv_const(value, var.width)))
        verdict = _checked(verifier, budget, retry_policy, stats,
                           side="verification")
        stats.verify_time += time.monotonic() - started
        stats.verify_conflicts += verifier.conflicts
        if verdict is UNSAT:
            return dict(candidate)
        model = verifier.model()
        counterexample = {
            var: T.bv_const(
                _validated(model, var, side="verification"), var.width
            )
            for var in forall_vars
        }
        # -- guess -----------------------------------------------------------
        started = time.monotonic()
        folded = T.substitute(formula, counterexample)
        conflicts_before = guess_solver.conflicts
        guess_solver.add(folded)
        verdict = _checked(guess_solver, budget, retry_policy, stats,
                           side="candidate search")
        stats.guess_time += time.monotonic() - started
        stats.guess_conflicts += guess_solver.conflicts - conflicts_before
        if verdict is UNSAT:
            raise SynthesisFailure(
                "no hole constants satisfy the specification; the datapath "
                "sketch cannot implement this instruction"
            )
        model = guess_solver.model()
        candidate = {
            var.name: _validated(model, var, side="candidate search")
            for var in hole_vars
        }
    raise SynthesisTimeout(
        f"CEGIS did not converge within {max_iterations} iterations",
        reason="iterations",
    )


def _checked(solver, budget, retry_policy, stats, side):
    """One budgeted check with retry-with-escalation on retryable UNKNOWNs.

    Returns SAT/UNSAT; budget exhaustion surfaces as ``SynthesisTimeout``
    (with the exhausted cap as ``reason``) and non-budget UNKNOWNs as
    ``SolverUnknown`` once the retry policy gives up.
    """
    def attempt_check(attempt):
        if attempt.index:
            stats.retries += 1
            if attempt.seed is not None:
                solver.reseed(attempt.seed)
        verdict = solver.check(max_conflicts=attempt.max_conflicts,
                               budget=budget)
        if verdict == UNKNOWN:
            raise SolverUnknown(
                f"{side} returned unknown ({verdict.reason}) after "
                f"{stats.iterations} iterations",
                reason=verdict.reason,
            )
        return verdict

    try:
        return run_with_retry(attempt_check, retry_policy, budget=budget)
    except SynthesisTimeout:
        raise
    except BudgetExhausted as fault:
        # The budget itself tripped (pre-check or mid-solve): timeout.
        raise SynthesisTimeout(str(fault), reason=fault.reason) from fault
    except SolverUnknown as fault:
        if fault.reason in ("deadline", "memory"):
            raise SynthesisTimeout(str(fault), reason=fault.reason) from fault
        raise


def _validated(model, var, side):
    """Read ``var`` from ``model``, rejecting out-of-width garbage.

    A malformed assignment means the backend (or an injected fault) broke
    the encoding contract; surfacing it as :class:`MalformedModel` lets the
    engine degrade instead of synthesizing corrupt control logic.
    """
    value = model.value(var, warn=False)
    if not isinstance(value, int) or value < 0 or (value >> var.width):
        raise MalformedModel(
            f"{side} model assigns {var.name!r} = {value!r}, which does not "
            f"fit its {var.width}-bit width"
        )
    return value
