"""The synthesis problem triple: sketch + specification + abstraction."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.abstraction.model import AbstractionFunction
from repro.oyster.ast import Design

__all__ = ["SynthesisProblem"]


@dataclass
class SynthesisProblem:
    """Everything control logic synthesis needs (Figure 4's three inputs).

    ``const_mems`` maps datapath memory names to ``ConstMemory`` contents for
    read-only lookup tables (the AES S-boxes); these back the corresponding
    ``MemoryDecl`` during symbolic evaluation instead of uninterpreted
    functions, mirroring the paper's Racket immutable vectors (Section 5.1).
    """

    sketch: Design
    spec: object  # repro.ila.Ila
    alpha: AbstractionFunction
    const_mems: dict = field(default_factory=dict)
    name: str = ""
    _trace_cache: object = field(default=None, init=False, repr=False,
                                 compare=False)

    def __post_init__(self):
        if not self.name:
            self.name = self.sketch.name
        self.spec.validate()
        if not self.sketch.holes:
            raise ValueError(
                f"sketch {self.sketch.name!r} has no holes to synthesize"
            )

    def trace_cache(self):
        """The problem's shared-trace cache (created on first use).

        The incremental pipeline evaluates the sketch symbolically once
        per (sketch, cycles, const_mems) and serves every instruction's
        formula from the cached trace; keeping the cache on the problem
        lets synthesis, minimization and re-runs share one evaluation.
        """
        from repro.synthesis.incremental import TraceCache

        if self._trace_cache is None:
            self._trace_cache = TraceCache()
        return self._trace_cache
