"""Result and error types for control logic synthesis."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SynthesisError",
    "SynthesisTimeout",
    "SynthesisFailure",
    "InstructionSolution",
    "SynthesisResult",
]


class SynthesisError(Exception):
    """Base class for synthesis failures."""


class SynthesisTimeout(SynthesisError):
    """The configured time/iteration budget was exhausted."""


class SynthesisFailure(SynthesisError):
    """No control logic exists: the sketch cannot implement the spec.

    This is the paper's "datapath sketch is incorrect with respect to the
    ILA" outcome (Section 5.3): the solver proved the hole constraints
    unsatisfiable for some instruction.
    """


@dataclass
class InstructionSolution:
    """Solved hole constants for one instruction (Equation 2's c_j)."""

    instruction_name: str
    hole_values: dict  # hole name -> int
    iterations: int
    solve_time: float


@dataclass
class SynthesisResult:
    """The output of control logic synthesis.

    ``hole_exprs`` maps each hole to the Oyster expression that fills it
    (after the control union in per-instruction mode); ``control_stmts`` are
    the generated assignments (precondition wires first), and
    ``completed_design`` is the sketch with holes replaced by the generated
    control logic — the final design of Figure 4.
    """

    problem_name: str
    mode: str
    hole_exprs: dict
    control_stmts: list
    completed_design: object
    per_instruction: list = field(default_factory=list)
    elapsed: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def instruction_count(self):
        return len(self.per_instruction)

    def hole_values_for(self, instruction_name):
        for solution in self.per_instruction:
            if solution.instruction_name == instruction_name:
                return solution.hole_values
        raise KeyError(instruction_name)

    def summary(self):
        lines = [
            f"synthesis of {self.problem_name!r} ({self.mode}): "
            f"{len(self.hole_exprs)} holes, "
            f"{self.instruction_count} instructions, "
            f"{self.elapsed:.2f}s"
        ]
        for solution in self.per_instruction:
            lines.append(
                f"  {solution.instruction_name}: "
                f"{solution.iterations} CEGIS iterations, "
                f"{solution.solve_time:.2f}s"
            )
        return "\n".join(lines)
