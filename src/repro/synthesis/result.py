"""Result and error types for control logic synthesis."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.errors import BudgetExhausted

__all__ = [
    "SynthesisError",
    "SynthesisTimeout",
    "SynthesisFailure",
    "MalformedResumeHandle",
    "InstructionSolution",
    "SynthesisResult",
    "PartialSynthesisResult",
    "RESUME_HANDLE_SCHEMA",
    "RESUME_HANDLE_VERSION",
]

#: The resume-handle wire schema tag and its current version.  The version
#: is bumped when a field changes meaning; readers refuse *newer* versions
#: (they cannot know what the fields mean) and accept older ones.
RESUME_HANDLE_SCHEMA = "repro.partial_synthesis_result/1"
RESUME_HANDLE_VERSION = 1


class SynthesisError(Exception):
    """Base class for synthesis failures."""


class MalformedResumeHandle(SynthesisError, ValueError):
    """A resume handle could not be decoded into a usable partial result.

    Raised instead of a raw ``json.JSONDecodeError``/``KeyError`` when a
    handle file is torn (a crash mid-write), corrupt, from a foreign
    schema, or from a *newer* handle version than this reader knows.
    ``reason`` is machine-readable (``"torn-or-corrupt"``,
    ``"foreign-schema"``, ``"unknown-version"``, ``"missing-field"``);
    ``path`` names the offending file when it came from disk.

    Subclasses ``ValueError`` so pre-existing callers that caught the old
    untyped failure keep working.
    """

    def __init__(self, message="", reason="torn-or-corrupt", path=None):
        super().__init__(
            message or f"malformed resume handle ({reason})"
        )
        self.reason = reason
        self.path = path


class SynthesisTimeout(SynthesisError, BudgetExhausted):
    """The configured time/iteration budget was exhausted.

    Participates in the ``repro.runtime`` taxonomy (it *is* a
    :class:`BudgetExhausted`), carrying a machine-readable ``reason``
    (``"deadline"``, ``"conflicts"``, ``"memory"``, ``"iterations"``) and,
    when raised from the per-instruction engine loop, a ``partial``
    :class:`PartialSynthesisResult` holding every completed instruction
    solution so no work is discarded.
    """

    def __init__(self, message="", reason="deadline", partial=None):
        SynthesisError.__init__(self, message or
                                f"budget exhausted ({reason})")
        self.reason = reason
        self.partial = partial


class SynthesisFailure(SynthesisError):
    """No control logic exists: the sketch cannot implement the spec.

    This is the paper's "datapath sketch is incorrect with respect to the
    ILA" outcome (Section 5.3): the solver proved the hole constraints
    unsatisfiable for some instruction.
    """


@dataclass
class InstructionSolution:
    """Solved hole constants for one instruction (Equation 2's c_j).

    The encode counters (``solver_instances``, ``aig_nodes``,
    ``tseitin_clauses``, ``trace_cache_hits``) are deltas of the
    process-global ``repro.smt.counters`` taken across this instruction's
    synthesis — exact in serial runs, jointly attributed under concurrent
    dispatch.
    """

    instruction_name: str
    hole_values: dict  # hole name -> int
    iterations: int
    solve_time: float
    conflicts: int = 0
    retries: int = 0
    solver_instances: int = 0
    aig_nodes: int = 0
    tseitin_clauses: int = 0
    trace_cache_hits: int = 0

    def to_dict(self):
        return {
            "instruction_name": self.instruction_name,
            "hole_values": dict(self.hole_values),
            "iterations": self.iterations,
            "solve_time": self.solve_time,
            "conflicts": self.conflicts,
            "retries": self.retries,
            "solver_instances": self.solver_instances,
            "aig_nodes": self.aig_nodes,
            "tseitin_clauses": self.tseitin_clauses,
            "trace_cache_hits": self.trace_cache_hits,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            instruction_name=data["instruction_name"],
            hole_values={k: int(v) for k, v in data["hole_values"].items()},
            iterations=int(data["iterations"]),
            solve_time=float(data["solve_time"]),
            conflicts=int(data.get("conflicts", 0)),
            retries=int(data.get("retries", 0)),
            solver_instances=int(data.get("solver_instances", 0)),
            aig_nodes=int(data.get("aig_nodes", 0)),
            tseitin_clauses=int(data.get("tseitin_clauses", 0)),
            trace_cache_hits=int(data.get("trace_cache_hits", 0)),
        )


@dataclass
class SynthesisResult:
    """The output of control logic synthesis.

    ``hole_exprs`` maps each hole to the Oyster expression that fills it
    (after the control union in per-instruction mode); ``control_stmts`` are
    the generated assignments (precondition wires first), and
    ``completed_design`` is the sketch with holes replaced by the generated
    control logic — the final design of Figure 4.
    """

    problem_name: str
    mode: str
    hole_exprs: dict
    control_stmts: list
    completed_design: object
    per_instruction: list = field(default_factory=list)
    elapsed: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def is_partial(self):
        return False

    @property
    def instruction_count(self):
        return len(self.per_instruction)

    def hole_values_for(self, instruction_name):
        for solution in self.per_instruction:
            if solution.instruction_name == instruction_name:
                return solution.hole_values
        raise KeyError(instruction_name)

    def summary(self):
        lines = [
            f"synthesis of {self.problem_name!r} ({self.mode}): "
            f"{len(self.hole_exprs)} holes, "
            f"{self.instruction_count} instructions, "
            f"{self.elapsed:.2f}s"
        ]
        for solution in self.per_instruction:
            lines.append(
                f"  {solution.instruction_name}: "
                f"{solution.iterations} CEGIS iterations, "
                f"{solution.solve_time:.2f}s"
            )
        return "\n".join(lines)


@dataclass
class PartialSynthesisResult:
    """A synthesis run that the budget (or a solver fault) cut short.

    Carries every *completed* instruction solution, the names still
    ``pending``, the machine-readable ``reason`` the run stopped, and
    per-instruction fault records.  It is also the resume handle: pass it
    back as ``synthesize(problem, resume_from=partial)`` (or its
    :meth:`to_dict` round-trip, e.g. after a process restart) and the
    engine re-solves only the pending instructions, reusing the completed
    ones verbatim.
    """

    problem_name: str
    mode: str
    completed: list            # InstructionSolution, in spec order
    pending: list              # instruction names not yet solved
    reason: str                # "deadline" / "conflicts" / "memory" / ...
    elapsed: float = 0.0
    stats: dict = field(default_factory=dict)
    faults: list = field(default_factory=list)  # (instruction, reason) pairs

    @property
    def is_partial(self):
        return True

    @property
    def completed_count(self):
        return len(self.completed)

    def hole_values_for(self, instruction_name):
        for solution in self.completed:
            if solution.instruction_name == instruction_name:
                return solution.hole_values
        raise KeyError(instruction_name)

    def to_dict(self):
        """JSON-serializable resume handle."""
        return {
            "schema": RESUME_HANDLE_SCHEMA,
            "version": RESUME_HANDLE_VERSION,
            "problem_name": self.problem_name,
            "mode": self.mode,
            "completed": [s.to_dict() for s in self.completed],
            "pending": list(self.pending),
            "reason": self.reason,
            "elapsed": self.elapsed,
            "stats": dict(self.stats),
            "faults": [list(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise MalformedResumeHandle(
                "resume handle is not a JSON object: "
                f"{type(data).__name__}",
                reason="torn-or-corrupt",
            )
        if data.get("schema") != RESUME_HANDLE_SCHEMA:
            raise MalformedResumeHandle(
                "not a serialized PartialSynthesisResult: "
                f"{data.get('schema')!r}",
                reason="foreign-schema",
            )
        version = data.get("version", 1)  # pre-version handles are v1
        if not isinstance(version, int) or version > RESUME_HANDLE_VERSION:
            raise MalformedResumeHandle(
                f"resume handle version {version!r} is newer than this "
                f"reader (max {RESUME_HANDLE_VERSION})",
                reason="unknown-version",
            )
        try:
            return cls(
                problem_name=data["problem_name"],
                mode=data["mode"],
                completed=[InstructionSolution.from_dict(s)
                           for s in data["completed"]],
                pending=list(data["pending"]),
                reason=data["reason"],
                elapsed=float(data.get("elapsed", 0.0)),
                stats=dict(data.get("stats", {})),
                faults=[tuple(f) for f in data.get("faults", [])],
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise MalformedResumeHandle(
                f"resume handle is missing or mistypes a field: {exc!r}",
                reason="missing-field",
            ) from exc

    def summary(self):
        lines = [
            f"partial synthesis of {self.problem_name!r} ({self.mode}): "
            f"{len(self.completed)} instructions solved, "
            f"{len(self.pending)} pending, stopped on {self.reason!r} "
            f"after {self.elapsed:.2f}s"
        ]
        for solution in self.completed:
            lines.append(
                f"  [done] {solution.instruction_name}: "
                f"{solution.iterations} CEGIS iterations, "
                f"{solution.solve_time:.2f}s, {solution.conflicts} conflicts"
            )
        for name in self.pending:
            lines.append(f"  [pending] {name}")
        for name, reason in self.faults:
            lines.append(f"  [fault] {name}: {reason}")
        return "\n".join(lines)
