"""Instruction-independence checks (Section 3.3.1).

The per-instruction optimization is sound only when:

1. **Mutually exclusive preconditions** — no two instructions can decode at
   once (checked with the solver over a shared symbolic trace);
2. **No feedback into control** — the signals the generated control logic
   observes (the decode-field bindings) must not themselves depend on holes,
   except through the valid wires named by the abstraction function's
   ``assume`` clause.
"""

from __future__ import annotations

from repro.ila.compiler import ConstraintCompiler
from repro.oyster.analysis import transitive_dependencies
from repro.oyster.symbolic import SymbolicEvaluator
from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNKNOWN
from repro.synthesis.result import SynthesisError

__all__ = [
    "check_instruction_independence",
    "IndependenceViolation",
]


class IndependenceViolation(SynthesisError):
    """The sketch/spec pair violates the instruction-independence property."""


def check_instruction_independence(problem, timeout_per_pair=5.0,
                                   max_pairwise=4096):
    """Raise ``IndependenceViolation`` if either condition fails.

    The pairwise-exclusion check is skipped (with a returned note) when the
    number of instruction pairs exceeds ``max_pairwise``.
    """
    notes = []
    _check_no_feedback(problem)
    pair_count = len(problem.spec.instructions) ** 2
    if pair_count > max_pairwise:
        notes.append(
            f"skipped pairwise exclusion ({pair_count} pairs exceeds the "
            f"budget of {max_pairwise})"
        )
        return notes
    _check_mutual_exclusion(problem, timeout_per_pair)
    return notes


def _check_no_feedback(problem):
    sketch = problem.sketch
    alpha = problem.alpha
    spec = problem.spec
    hole_names = {hole.name for hole in sketch.holes}
    assume_signals = {signal for signal, _ in alpha.assumes}
    observed = set()
    for field_name in spec.decode_fields:
        binding = alpha.binding(field_name)
        observed.add(binding)
    for name, var in list(spec.inputs.items()) + list(spec.states.items()):
        if alpha.has_entry(name):
            for mapping in alpha.entries_for(name):
                if mapping.dp_type != "memory":
                    observed.add(mapping.dp_name)
    reachable = transitive_dependencies(
        sketch, observed, stop_names=assume_signals
    )
    feedback = reachable & hole_names
    if feedback:
        raise IndependenceViolation(
            f"control logic inputs {sorted(observed & reachable)} depend on "
            f"holes {sorted(feedback)}; only signals assumed in the "
            "abstraction function may close that loop"
        )


def _check_mutual_exclusion(problem, timeout_per_pair):
    evaluator = SymbolicEvaluator(
        problem.sketch, const_mems=problem.const_mems, prefix="x!"
    )
    trace = evaluator.run(problem.alpha.cycles)
    compiler = ConstraintCompiler(problem.spec, problem.alpha, trace,
                                  prefix="x!")
    preconditions = [
        (instruction.name, compiler.compile_expr(instruction.decode))
        for instruction in problem.spec.instructions
    ]
    side = T.and_(*trace.side_conditions)
    for i in range(len(preconditions)):
        for j in range(i + 1, len(preconditions)):
            name_i, pre_i = preconditions[i]
            name_j, pre_j = preconditions[j]
            both = T.and_(side, pre_i, pre_j)
            if both is T.FALSE:
                continue
            solver = Solver()
            solver.add(both)
            verdict = solver.check(timeout=timeout_per_pair)
            if verdict is SAT:
                raise IndependenceViolation(
                    f"instructions {name_i!r} and {name_j!r} can decode "
                    "simultaneously; per-instruction synthesis is unsound "
                    "for this specification"
                )
            if verdict == UNKNOWN:
                raise IndependenceViolation(
                    f"could not decide exclusion of {name_i!r}/{name_j!r} "
                    f"within the budget ({verdict.reason})"
                )
