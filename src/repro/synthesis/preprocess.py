"""Query preprocessing: destructive equality resolution.

The synthesis formula has the shape ``(side ∧ pre ∧ assumes) → posts``.
When a top-level antecedent conjunct is

* ``var_a == var_b``  (e.g. the drained-pipeline invariant
  ``fetch_pc == pc``, or an Ackermann consistency fact whose address
  disjointness has already folded away), or
* a bare width-1 variable / its negation (e.g. ``instruction_valid``),

the formula is equivalent to the one with that variable substituted
(``∀x,y. (x==y ∧ A) → C  ⟺  ∀y. A[x:=y] → C[x:=y]``).  Substitution re-runs
the rewriting constructors, which aligns the specification-side and
datapath-side term structures: after a couple of rounds the two clmul/S-box
networks the solver would otherwise have to prove congruent become the
*same hash-consed term* and the equation folds to true.  This is standard
SMT preprocessing (DER); it is what keeps the pipelined cores' queries in
the same ballpark as the single-cycle ones.

Hole variables are existentially quantified and must never be eliminated;
equalities touching them are left alone (they can only appear through the
abstraction function's assume exception anyway).
"""

from __future__ import annotations

from repro.smt import terms as T

__all__ = ["resolve_equalities"]


def _conjuncts(term):
    out = []
    stack = [term]
    while stack:
        node = stack.pop()
        if node.op == "and":
            stack.extend(node.args)
        else:
            out.append(node)
    return out


def _pick_substitution(antecedent, protected):
    for conjunct in _conjuncts(antecedent):
        if conjunct.op == "eq":
            left, right = conjunct.args
            if left.is_var and left.name not in protected and left is not right:
                if not (right.is_var and right.name in protected):
                    return left, right
            if right.is_var and right.name not in protected:
                if not (left.is_var and left.name in protected):
                    return right, left
            continue
        if conjunct.is_var and conjunct.width == 1 and (
            conjunct.name not in protected
        ):
            return conjunct, T.TRUE
        if (conjunct.op == "not" and conjunct.args[0].is_var
                and conjunct.args[0].width == 1
                and conjunct.args[0].name not in protected):
            return conjunct.args[0], T.FALSE
    return None


def resolve_equalities(antecedent, consequent, protected_names=(),
                       max_rounds=64):
    """Repeatedly eliminate antecedent equalities by substitution.

    ``protected_names`` are variables that must survive (the hole
    variables).  Returns the rewritten ``(antecedent, consequent)``.
    Equality-of-two-variables conjuncts eliminate the side that is not
    protected; ``x == f(y)`` with a non-variable right-hand side also
    eliminates ``x`` (the substitution is still a definition).
    """
    protected = set(protected_names)
    for _ in range(max_rounds):
        found = _pick_substitution(antecedent, protected)
        if found is None:
            break
        var, replacement = found
        # Guard against cyclic definitions: x := f(x) is not a definition.
        if not replacement.is_const and var in T.free_variables(replacement):
            protected.add(var.name)
            continue
        mapping = {var: replacement}
        antecedent = T.substitute(antecedent, mapping)
        consequent = T.substitute(consequent, mapping)
    return antecedent, consequent
