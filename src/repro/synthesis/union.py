"""The control union ⊔ (Figure 6) and precondition rendering.

Per-instruction synthesis yields, for every hole, a concrete bitvector per
instruction.  The union operator groups instructions by solved value and
emits nested if-then-else Oyster code dispatching on the instruction
preconditions — exactly the paper's ``LogicGen``, including the
"one shared value -> plain constant" collapse visible in the AES case study.

Preconditions are *rendered* from the spec's decode expressions into Oyster
code over datapath signals: decode fields (``opcode``, ``funct3``, ...) map
to the sketch wires named by the abstraction function's field bindings, and
spec inputs/state map through their abstraction entries.
"""

from __future__ import annotations

from repro.ila import ast as ila_ast
from repro.oyster import ast as oy
from repro.synthesis.result import SynthesisError

__all__ = ["control_union", "render_precondition", "RenderError"]


class RenderError(SynthesisError):
    """A decode expression cannot be rendered over datapath signals."""


def render_precondition(spec, alpha, expr):
    """Translate a spec decode expression into an Oyster expression."""
    fields = {id(field): name for name, field in spec.decode_fields.items()}
    memo = {}

    def walk(node):
        if id(node) in memo:
            return memo[id(node)]
        rendered = _render_node(node, walk, fields, spec, alpha)
        memo[id(node)] = rendered
        return rendered

    return walk(expr)


def _render_node(node, walk, fields, spec, alpha):
    field_name = fields.get(id(node))
    if field_name is not None:
        return oy.Var(alpha.binding(field_name))
    if isinstance(node, ila_ast.BvConst):
        return oy.Const(node.value, node.width)
    if isinstance(node, ila_ast.BvVar):
        mapping = alpha.entry(node.name, role="data")
        if mapping.dp_type == "memory":
            raise RenderError(
                f"decode references memory {node.name!r} directly; declare "
                "a decode field for it"
            )
        return oy.Var(mapping.dp_name)
    if isinstance(node, ila_ast.Unop):
        return oy.Unop(node.op, walk(node.arg))
    if isinstance(node, ila_ast.Binop):
        return oy.Binop(node.op, walk(node.left), walk(node.right))
    if isinstance(node, ila_ast.IteExpr):
        return oy.Ite(walk(node.cond), walk(node.then), walk(node.els))
    if isinstance(node, ila_ast.ExtractExpr):
        return oy.Extract(walk(node.arg), node.high, node.low)
    if isinstance(node, ila_ast.ConcatExpr):
        return oy.Concat(walk(node.high), walk(node.low))
    if isinstance(node, ila_ast.LoadExpr):
        raise RenderError(
            "decode contains a memory load with no decode-field binding; "
            "declare it with Ila.declare_decode_field and bind it to a "
            "datapath wire in the abstraction function"
        )
    raise RenderError(
        f"cannot render {type(node).__name__} in a precondition"
    )


def control_union(problem, solutions):
    """Combine per-instruction hole constants into final control logic.

    ``solutions`` is a list of ``InstructionSolution`` in specification
    order.  Returns ``(hole_exprs, control_stmts)`` where ``control_stmts``
    starts with the shared precondition wire definitions (``pre_<instr> :=
    <rendered decode>``) followed by one assignment per hole.
    """
    spec = problem.spec
    alpha = problem.alpha
    sketch = problem.sketch
    by_name = {
        solution.instruction_name: solution for solution in solutions
    }
    instr_order = [
        instr.name for instr in spec.instructions if instr.name in by_name
    ]
    if len(instr_order) != len(solutions):
        raise SynthesisError("solutions do not match the specification")

    pre_wires = {}  # instruction name -> wire name
    pre_stmts = []
    hole_stmts = []
    hole_exprs = {}

    def pre_wire(instr_name):
        wire = pre_wires.get(instr_name)
        if wire is None:
            wire = f"pre_{_sanitize(instr_name)}"
            rendered = render_precondition(
                spec, alpha, spec.instr(instr_name).decode
            )
            pre_stmts.append(oy.Assign(wire, rendered))
            pre_wires[instr_name] = wire
        return wire

    for hole in sketch.holes:
        groups = {}  # value -> [instr names], insertion-ordered
        for instr_name in instr_order:
            value = by_name[instr_name].hole_values[hole.name]
            groups.setdefault(value, []).append(instr_name)
        expr = _logic_gen(list(groups.items()), hole.width, pre_wire)
        hole_exprs[hole.name] = expr
        hole_stmts.append(oy.Assign(hole.name, expr))

    return hole_exprs, pre_stmts + hole_stmts


def _logic_gen(value_groups, width, pre_wire):
    """Figure 6's LogicGen: nested if-then-else over grouped preconditions."""
    if len(value_groups) == 1:
        value, _ = value_groups[0]
        return oy.Const(value, width)
    value, instr_names = value_groups[0]
    condition = None
    for instr_name in instr_names:
        var = oy.Var(pre_wire(instr_name))
        condition = var if condition is None else oy.Binop("|", condition, var)
    return oy.Ite(
        condition,
        oy.Const(value, width),
        _logic_gen(value_groups[1:], width, pre_wire),
    )


def _sanitize(name):
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
