"""Independent verification of (completed) designs against an ILA spec.

``verify_design`` re-derives the Equation (1) conditions for a hole-free
design and asks the solver for a violating initial state per instruction.
This is deliberately *not* the synthesizer's own claim: it re-runs symbolic
evaluation and compilation from scratch, so tests can use it as an oracle
for generated control logic — and it doubles as a classical bounded
correctness checker for hand-written control (the Table 2 references).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ila.compiler import ConstraintCompiler
from repro.obs import trace as _obs
from repro.oyster.symbolic import SymbolicEvaluator
from repro.runtime import BudgetExhausted
from repro.runtime.reasons import normalize_reason
from repro.smt import terms as T
from repro.smt.backends import resolve_solver_config
from repro.smt.solver import Solver, SAT, UNSAT, UNKNOWN
from repro.synthesis.preprocess import resolve_equalities

__all__ = ["verify_design", "VerificationResult", "InstructionVerdict"]


@dataclass
class InstructionVerdict:
    instruction_name: str
    status: str  # "proved", "violated", "unknown"
    counterexample: dict = field(default_factory=dict)
    time: float = 0.0
    #: Why an "unknown" is unknown: always a canonical reason from
    #: ``repro.runtime.reasons`` ("deadline", "conflicts", "memory", ...).
    reason: str = ""


@dataclass
class VerificationResult:
    design_name: str
    verdicts: list

    @property
    def ok(self):
        return all(v.status == "proved" for v in self.verdicts)

    @property
    def violations(self):
        return [v for v in self.verdicts if v.status == "violated"]

    def summary(self):
        lines = [f"verification of {self.design_name!r}:"]
        for verdict in self.verdicts:
            detail = f" [{verdict.reason}]" if verdict.reason else ""
            lines.append(
                f"  {verdict.instruction_name}: {verdict.status}{detail} "
                f"({verdict.time:.2f}s)"
            )
        return "\n".join(lines)


def verify_design(design, spec, alpha, const_mems=None, hole_values=None,
                  timeout_per_instruction=None, instructions=None,
                  budget=None, execution=None, worker_pool=None,
                  config=None, backend=None):
    """Check every instruction's pre→post on ``design``.

    ``hole_values`` allows verifying a sketch under concrete hole constants
    (used by tests); completed designs have no holes.  ``instructions``
    restricts the check to the named subset.

    ``budget`` is a shared ``repro.runtime.Budget`` across all
    instructions.  Verification is sound under resource exhaustion: a
    budget that trips (before or mid-check) yields a verdict of
    ``"unknown"`` whose ``reason`` names the exhausted cap (canonical, per
    ``repro.runtime.reasons``) — never a ``"proved"`` the solver did not
    actually establish.  ``config``/``backend`` select the decision
    procedure exactly as in synthesis (``execution``/``worker_pool`` are
    the deprecated spellings).
    """
    spec.validate()
    config = resolve_solver_config(config, backend=backend,
                                   execution=execution,
                                   worker_pool=worker_pool)
    verdicts = []
    chosen = spec.instructions
    if instructions is not None:
        wanted = set(instructions)
        chosen = [i for i in spec.instructions if i.name in wanted]
    for index, instruction in enumerate(chosen):
        started = time.monotonic()
        prefix = f"v{index}!"
        term_holes = None
        if hole_values:
            term_holes = {
                name: T.bv_const(value, _hole_width(design, name))
                for name, value in hole_values.items()
            }
        try:
            if budget is not None:
                # Pre-check: an already-spent budget must not silently
                # skip work and report success.
                budget.check()
            # A span of its own: verification queries are attributable
            # even when verify_design is called standalone (the trace
            # report's zero-orphan-queries invariant covers the oracle).
            with _obs.span("verify.instruction", instr=instruction.name):
                evaluator = SymbolicEvaluator(
                    design, hole_values=term_holes,
                    const_mems=const_mems or {}, prefix=prefix,
                )
                trace = evaluator.run(alpha.cycles)
                compiler = ConstraintCompiler(spec, alpha, trace,
                                              prefix=prefix)
                compiled = compiler.compile_instruction(instruction)
                side = T.and_(*trace.side_conditions)
                antecedent, consequent = resolve_equalities(
                    T.bv_and(side, compiled.antecedent()),
                    compiled.consequent()
                )
                violation = T.and_(antecedent, T.bv_not(consequent))
                solver = Solver(**config.solver_kwargs())
                solver.add(violation)
                verdict = solver.check(timeout=timeout_per_instruction,
                                       budget=budget)
        except BudgetExhausted as fault:
            verdicts.append(
                InstructionVerdict(
                    instruction.name, "unknown", {},
                    time.monotonic() - started,
                    reason=normalize_reason(fault.reason),
                )
            )
            continue
        elapsed = time.monotonic() - started
        if verdict is UNSAT:
            verdicts.append(
                InstructionVerdict(instruction.name, "proved", {}, elapsed)
            )
        elif verdict is SAT:
            verdicts.append(
                InstructionVerdict(
                    instruction.name, "violated",
                    solver.model().as_dict(), elapsed,
                )
            )
        else:
            verdicts.append(
                InstructionVerdict(
                    instruction.name, "unknown", {}, elapsed,
                    reason=normalize_reason(
                        getattr(verdict, "reason", "") or ""
                    ),
                )
            )
    return VerificationResult(design.name, verdicts)


def _hole_width(design, name):
    decl = design.decl_of(name)
    if decl is None:
        raise KeyError(f"no hole named {name!r} in {design.name!r}")
    return decl.width
