"""Per-instruction control logic synthesis (Section 3.3.1).

Synthesizes the hole constants of Equation (2) for one instruction at a
time: symbolically evaluate the sketch with fresh hole variables, compile the
instruction's pre/postconditions through the abstraction function, and run
CEGIS for the formula ``(side ∧ pre ∧ assumes) → (posts ∧ frames)``.
"""

from __future__ import annotations

import time

from repro.ila.compiler import ConstraintCompiler
from repro.oyster.symbolic import SymbolicEvaluator
from repro.smt import terms as T
from repro.synthesis.cegis import cegis_solve, CegisStats
from repro.synthesis.preprocess import resolve_equalities
from repro.synthesis.result import InstructionSolution, SynthesisError

__all__ = ["synthesize_instruction", "instruction_formula"]


def instruction_formula(problem, instruction, prefix):
    """Build (formula, trace, compiled) for one instruction.

    The formula is ``(side_conditions ∧ pre ∧ assumes) → (posts ∧ frames)``
    with the sketch's holes appearing as the free variables named
    ``{prefix}hole!<name>``.
    """
    evaluator = SymbolicEvaluator(
        problem.sketch, const_mems=problem.const_mems, prefix=prefix
    )
    trace = evaluator.run(problem.alpha.cycles)
    compiler = ConstraintCompiler(problem.spec, problem.alpha, trace,
                                  prefix=prefix)
    compiled = compiler.compile_instruction(instruction)
    # Side conditions must be harvested *after* compilation: compiling the
    # postconditions performs additional memory reads (fresh frame
    # addresses), which append Ackermann constraints.
    side = T.and_(*trace.side_conditions)
    antecedent = T.bv_and(side, compiled.antecedent())
    consequent = compiled.consequent()
    hole_names = {
        term.name for term in trace.hole_values.values() if term.is_var
    }
    antecedent, consequent = resolve_equalities(
        antecedent, consequent, protected_names=hole_names
    )
    formula = T.implies(antecedent, consequent)
    return formula, trace, compiled


def synthesize_instruction(problem, instruction, index, timeout=None,
                           max_iterations=256, partial_eval=True,
                           budget=None, retry_policy=None,
                           execution="inprocess", worker_pool=None):
    """Solve the hole constants for one instruction; returns a solution.

    ``budget`` is a ``repro.runtime.Budget`` slice for this instruction
    (shared caps are enforced through its parent chain); ``retry_policy``
    governs restart-with-escalation on retryable UNKNOWNs.
    ``execution="isolated"`` routes every solver check through
    ``worker_pool``'s sandboxed child processes.
    """
    started = time.monotonic()
    prefix = f"i{index}!"
    formula, trace, _ = instruction_formula(problem, instruction, prefix)
    hole_vars = [
        trace.hole_values[hole.name] for hole in problem.sketch.holes
    ]
    for var in hole_vars:
        if not var.is_var:
            raise SynthesisError(
                "per-instruction synthesis requires fresh hole variables"
            )
    stats = CegisStats()
    values_by_var = cegis_solve(
        formula, hole_vars, timeout=timeout, stats=stats,
        max_iterations=max_iterations, partial_eval=partial_eval,
        budget=budget, retry_policy=retry_policy,
        execution=execution, worker_pool=worker_pool,
    )
    hole_values = {
        hole.name: values_by_var[trace.hole_values[hole.name].name]
        for hole in problem.sketch.holes
    }
    return InstructionSolution(
        instruction_name=instruction.name,
        hole_values=hole_values,
        iterations=stats.iterations,
        solve_time=time.monotonic() - started,
        conflicts=stats.conflicts,
        retries=stats.retries,
    )
