"""Per-instruction control logic synthesis (Section 3.3.1).

Synthesizes the hole constants of Equation (2) for one instruction at a
time: symbolically evaluate the sketch with fresh hole variables, compile the
instruction's pre/postconditions through the abstraction function, and run
CEGIS for the formula ``(side ∧ pre ∧ assumes) → (posts ∧ frames)``.
"""

from __future__ import annotations

import time

from repro.ila.compiler import ConstraintCompiler
from repro.obs import trace as _obs
from repro.oyster.symbolic import SymbolicEvaluator
from repro.smt import counters as _counters
from repro.smt import terms as T
from repro.smt.backends import resolve_solver_config
from repro.synthesis.cegis import cegis_solve, CegisStats
from repro.synthesis.incremental import resolve_pipeline
from repro.synthesis.preprocess import resolve_equalities
from repro.synthesis.result import InstructionSolution, SynthesisError

__all__ = ["synthesize_instruction", "instruction_formula"]


def instruction_formula(problem, instruction, prefix):
    """Build (formula, trace, compiled) for one instruction.

    The formula is ``(side_conditions ∧ pre ∧ assumes) → (posts ∧ frames)``
    with the sketch's holes appearing as the free variables named
    ``{prefix}hole!<name>``.
    """
    evaluator = SymbolicEvaluator(
        problem.sketch, const_mems=problem.const_mems, prefix=prefix
    )
    trace = evaluator.run(problem.alpha.cycles)
    compiler = ConstraintCompiler(problem.spec, problem.alpha, trace,
                                  prefix=prefix)
    compiled = compiler.compile_instruction(instruction)
    # Side conditions must be harvested *after* compilation: compiling the
    # postconditions performs additional memory reads (fresh frame
    # addresses), which append Ackermann constraints.
    side = T.and_(*trace.side_conditions)
    antecedent = T.bv_and(side, compiled.antecedent())
    consequent = compiled.consequent()
    hole_names = {
        term.name for term in trace.hole_values.values() if term.is_var
    }
    antecedent, consequent = resolve_equalities(
        antecedent, consequent, protected_names=hole_names
    )
    formula = T.implies(antecedent, consequent)
    return formula, trace, compiled


def synthesize_instruction(problem, instruction, index, timeout=None,
                           max_iterations=256, partial_eval=True,
                           budget=None, retry_policy=None,
                           execution=None, worker_pool=None,
                           pipeline=None, incremental_ctx=None,
                           config=None, backend=None):
    """Solve the hole constants for one instruction; returns a solution.

    ``budget`` is a ``repro.runtime.Budget`` slice for this instruction
    (shared caps are enforced through its parent chain); ``retry_policy``
    governs restart-with-escalation on retryable UNKNOWNs.

    ``config`` (a :class:`repro.smt.backends.SolverConfig`) or ``backend``
    selects the decision procedure — e.g. ``backend="isolated"`` routes
    every solver check through a worker pool's sandboxed child processes.
    The config's ``pipeline`` field selects ``"fresh"`` (per-instruction
    symbolic evaluation + per-iteration verifiers) or ``"incremental"``
    (the problem's shared
    :class:`~repro.synthesis.incremental.TraceCache` trace + the
    assumption-based verify mode); ``None`` resolves to incremental
    unless ``partial_eval`` is disabled.  ``incremental_ctx`` shares one
    encode-once verifier across a serial run of instructions.
    ``execution``/``worker_pool``/``pipeline`` are the deprecated PR-2
    spellings of the same knobs.
    """
    started = time.monotonic()
    config = resolve_solver_config(config, backend=backend,
                                   execution=execution,
                                   worker_pool=worker_pool,
                                   pipeline=pipeline)
    pipeline = resolve_pipeline(config.pipeline, partial_eval)
    with _obs.span("synthesis.instruction", instr=instruction.name,
                   pipeline=pipeline, backend=config.backend_name):
        return _synthesize_instruction(
            problem, instruction, index, started, timeout, max_iterations,
            partial_eval, budget, retry_policy, config,
            pipeline, incremental_ctx,
        )


def _synthesize_instruction(problem, instruction, index, started, timeout,
                            max_iterations, partial_eval, budget,
                            retry_policy, config, pipeline,
                            incremental_ctx):
    encode_before = _counters.snapshot()
    if pipeline == "incremental":
        entry = problem.trace_cache().entry(problem)
        formula = entry.formulas[instruction.name]
        trace_holes = entry.trace.hole_values
    else:
        prefix = f"i{index}!"
        with _obs.span("synthesis.evaluate", instr=instruction.name):
            formula, trace, _ = instruction_formula(problem, instruction,
                                                    prefix)
        trace_holes = trace.hole_values
    hole_vars = [
        trace_holes[hole.name] for hole in problem.sketch.holes
    ]
    for var in hole_vars:
        if not var.is_var:
            raise SynthesisError(
                "per-instruction synthesis requires fresh hole variables"
            )
    stats = CegisStats()
    values_by_var = cegis_solve(
        formula, hole_vars, timeout=timeout, stats=stats,
        max_iterations=max_iterations, partial_eval=partial_eval,
        budget=budget, retry_policy=retry_policy, config=config,
        incremental=(pipeline == "incremental"),
        incremental_ctx=incremental_ctx,
    )
    hole_values = {
        hole.name: values_by_var[trace_holes[hole.name].name]
        for hole in problem.sketch.holes
    }
    encode_delta = _counters.delta_since(encode_before)
    return InstructionSolution(
        instruction_name=instruction.name,
        hole_values=hole_values,
        iterations=stats.iterations,
        solve_time=time.monotonic() - started,
        conflicts=stats.conflicts,
        retries=stats.retries,
        solver_instances=encode_delta["solver_instances"],
        aig_nodes=encode_delta["aig_nodes"],
        tseitin_clauses=encode_delta["tseitin_clauses"],
        trace_cache_hits=encode_delta["trace_cache_hits"],
    )
