"""The incremental synthesis pipeline: shared traces + encode-once CEGIS.

Three layers of waste in the fresh pipeline, and what replaces them:

1. **Shared traces.**  Fresh mode symbolically evaluates the sketch once
   *per instruction* under a per-instruction prefix (``i0!``, ``i1!`` ...),
   so N instructions cost N full evaluations whose differently-named
   variables defeat the hash-consing interner.  :class:`TraceCache`
   evaluates once per (sketch, cycles, const_mems) under one shared prefix
   and compiles every instruction's pre/postconditions against that single
   trace.

2. **Assumption-based verify.**  Fresh mode builds a brand-new verifier
   ``Solver`` per CEGIS iteration, re-blasting the formula and discarding
   all learned clauses.  :class:`IncrementalContext` asserts each
   instruction's negated formula *once*, guarded by a fresh selector
   variable, and checks each candidate under per-call assumptions: the
   selector plus one literal per hole bit.  Hole-bit assumptions are
   extract/not terms over already-blasted variables, so a candidate check
   allocates zero new AIG nodes.

3. **Encode-once plumbing.**  The context also carries a shared guess-side
   ``BitBlaster``; cone-of-influence encoding in the solver facade makes
   the sharing sound (each solver encodes only what it asserts).

Soundness of the selector guard: asserting ``sel_j → ¬formula_j`` for
every instruction and checking under assumption ``sel_j`` is equivalent to
checking ``¬formula_j`` alone — a model may always set the *other*
selectors false, so the extra guarded assertions never constrain the
query.  UNSAT under assumptions therefore means the candidate is correct,
while the solver (and its learned clauses over the shared datapath) stays
alive for the next candidate and the next instruction.

Ackermann isolation: compiling an instruction's postconditions performs
fresh frame-address memory reads which append pairwise consistency side
conditions (the harvesting-order contract documented in
``per_instruction.instruction_formula``).  On a *shared* trace those reads
would accumulate across instructions, bloating every later formula with
other instructions' Ackermann pairs.  :class:`TraceEntry` therefore
snapshots each memory's read state before compiling an instruction and
restores it after, capturing exactly that instruction's side-condition
delta — each formula carries the evaluation-time conditions plus its own
fresh-read pairs, mirroring the fresh pipeline's formula shape.

Trace sharing is per-process: out-of-process backends (``"isolated"``
workers, ``"subprocess-dimacs"`` solvers) keep working because the
symbolic evaluation, compilation and formula construction all happen in
the engine process — remote solvers still receive plain DIMACS.
"""

from __future__ import annotations

from repro.ila.compiler import ConstraintCompiler
from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.oyster.memory import SymbolicMemory
from repro.oyster.symbolic import SymbolicEvaluator
from repro.smt import terms as T
from repro.smt.backends import resolve_solver_config
from repro.smt.bitblast import BitBlaster
from repro.smt.counters import COUNTERS
from repro.smt.solver import Solver
from repro.synthesis.preprocess import resolve_equalities

__all__ = [
    "TraceCache",
    "TraceEntry",
    "IncrementalContext",
    "resolve_pipeline",
    "candidate_assumptions",
]

#: The shared evaluation prefix (fresh mode uses ``i{index}!`` instead).
SHARED_PREFIX = "sh!"


def resolve_pipeline(pipeline, partial_eval=True):
    """Validate the ``pipeline`` knob; ``None`` selects the default.

    The default is ``"incremental"`` — except under the rewriter ablation
    (``partial_eval=False``), whose full-datapath verify queries are
    defined against the fresh pipeline, so it keeps getting one.
    Explicitly combining ``pipeline="incremental"`` with
    ``partial_eval=False`` is a contradiction and raises.
    """
    if pipeline is None:
        return "incremental" if partial_eval else "fresh"
    if pipeline not in ("fresh", "incremental"):
        raise ValueError(f"unknown pipeline {pipeline!r}")
    if pipeline == "incremental" and not partial_eval:
        raise ValueError(
            "pipeline='incremental' requires partial_eval=True; the "
            "rewriter ablation (partial_eval=False) is the fresh "
            "pipeline's baseline"
        )
    return pipeline


class TraceEntry:
    """One shared symbolic evaluation plus per-instruction formulas.

    All instructions are compiled eagerly, in spec order, at construction
    time: compilation mutates the trace's memory read state, so doing it
    up front keeps formulas deterministic and lets the isolated engine
    dispatch instructions across threads against a read-only entry.
    """

    def __init__(self, problem, prefix=SHARED_PREFIX):
        self.prefix = prefix
        evaluator = SymbolicEvaluator(
            problem.sketch, const_mems=problem.const_mems, prefix=prefix
        )
        self.trace = evaluator.run(problem.alpha.cycles)
        #: Evaluation-time Ackermann conditions, shared by every formula.
        self.base_conditions = tuple(self.trace.side_conditions)
        self.hole_names = {
            term.name for term in self.trace.hole_values.values()
            if term.is_var
        }
        self.compiled = {}
        self.deltas = {}
        self.formulas = {}
        arrays = self._uninterpreted_arrays()
        for instruction in problem.spec.instructions:
            self._compile_instruction(problem, instruction, arrays)

    def _uninterpreted_arrays(self):
        arrays = []
        for memory in self.trace.initial_mems.values():
            if isinstance(memory, SymbolicMemory):
                base = memory._base
                if all(base is not other for other in arrays):
                    arrays.append(base)
        return arrays

    def _compile_instruction(self, problem, instruction, arrays):
        """Compile one instruction with snapshot/restore read isolation.

        The compiler appends fresh frame-address reads to the shared
        memories; restoring ``_reads``/``_by_addr`` (and truncating the
        side-condition list) afterwards means the next instruction's
        fresh reads pair only against the evaluation-time reads, not
        against this instruction's.  Restoring also makes the fresh
        counter's names collide across instructions — deliberately so:
        the per-instruction formulas are separate ∃∀ queries, and the
        shared interned subterms are exactly what the encode-once
        verifier deduplicates.
        """
        trace = self.trace
        base_len = len(self.base_conditions)
        marks = [
            (array, len(array._reads), dict(array._by_addr))
            for array in arrays
        ]
        compiler = ConstraintCompiler(
            problem.spec, problem.alpha, trace, prefix=self.prefix
        )
        compiled = compiler.compile_instruction(instruction)
        delta = tuple(trace.side_conditions[base_len:])
        del trace.side_conditions[base_len:]
        for array, read_count, by_addr in marks:
            del array._reads[read_count:]
            array._by_addr.clear()
            array._by_addr.update(by_addr)

        side = T.and_(*self.base_conditions, *delta)
        antecedent = T.bv_and(side, compiled.antecedent())
        consequent = compiled.consequent()
        antecedent, consequent = resolve_equalities(
            antecedent, consequent, protected_names=self.hole_names
        )
        self.compiled[instruction.name] = compiled
        self.deltas[instruction.name] = delta
        self.formulas[instruction.name] = T.implies(antecedent, consequent)

    def hole_vars(self, sketch):
        """The shared hole variables, in sketch hole order."""
        return [self.trace.hole_values[hole.name] for hole in sketch.holes]


class TraceCache:
    """Caches :class:`TraceEntry` objects per (sketch, cycles, const_mems).

    Lives on the :class:`~repro.synthesis.problem.SynthesisProblem` (see
    ``SynthesisProblem.trace_cache``), so per-instruction synthesis,
    monolithic synthesis and control minimization over the same problem
    all reuse one symbolic evaluation.
    """

    def __init__(self):
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def _key(self, problem):
        const_mems = tuple(
            sorted((name, id(mem)) for name, mem in problem.const_mems.items())
        )
        return (id(problem.sketch), problem.alpha.cycles, const_mems)

    def entry(self, problem):
        """The shared entry for ``problem``, building it on first use."""
        key = self._key(problem)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            COUNTERS.trace_cache_misses += 1
            _METRICS.inc("trace_cache.misses")
            with _obs.span("trace_cache.build",
                           cycles=problem.alpha.cycles):
                entry = TraceEntry(problem)
            self._entries[key] = entry
        else:
            self.hits += 1
            COUNTERS.trace_cache_hits += 1
            _METRICS.inc("trace_cache.hits")
            _obs.event("trace_cache.hit")
        return entry


class IncrementalContext:
    """Shared encode-once solver state for a run of CEGIS instances.

    Holds the assumption-based verifier (one ``Solver`` for *all*
    instructions, selector-guarded) and the shared guess-side blaster.
    A context must be used serially: share one across a sequential
    per-instruction loop, or give each dispatch thread its own.

    ``config`` is a :class:`repro.smt.backends.SolverConfig` selecting
    the decision procedure; candidate checks on a backend without native
    assumption support degrade to per-check DIMACS re-export (the facade
    handles it), so the context stays correct — just without the
    learned-clause reuse that motivates it.  ``execution``/``worker_pool``
    are the deprecated spellings.
    """

    def __init__(self, execution=None, worker_pool=None, config=None):
        config = resolve_solver_config(config, execution=execution,
                                       worker_pool=worker_pool)
        self.config = config
        self.verifier = Solver(**config.solver_kwargs())
        self.guess_blaster = BitBlaster()
        self._selectors = {}
        self._counter = 0

    def selector(self, formula):
        """The selector guarding ``¬formula``, asserting it on first use."""
        selector = self._selectors.get(formula)
        if selector is None:
            self._counter += 1
            selector = T.bv_var(f"cegis!sel!{self._counter}", 1)
            self.verifier.add(T.implies(selector, T.bv_not(formula)))
            self._selectors[formula] = selector
        return selector


def candidate_assumptions(hole_by_name, candidate):
    """Per-bit assumption literals pinning a candidate's hole constants.

    ``hole_by_name`` maps names to hole variable terms and ``candidate``
    maps the same names to ints.  Extracting single bits of an
    already-blasted variable (and complementing them) creates no AIG
    nodes, so a candidate check is pure solving — zero encode cost.
    """
    assumptions = []
    for name, value in candidate.items():
        var = hole_by_name[name]
        for i in range(var.width):
            bit = T.bv_extract(var, i, i)
            if not (value >> i) & 1:
                bit = T.bv_not(bit)
            assumptions.append(bit)
    return assumptions
