"""The incremental synthesis pipeline: shared traces + encode-once CEGIS.

Three layers of waste in the fresh pipeline, and what replaces them:

1. **Shared traces.**  Fresh mode symbolically evaluates the sketch once
   *per instruction* under a per-instruction prefix (``i0!``, ``i1!`` ...),
   so N instructions cost N full evaluations whose differently-named
   variables defeat the hash-consing interner.  :class:`TraceCache`
   evaluates once per (sketch, cycles, const_mems) under one shared prefix
   and compiles every instruction's pre/postconditions against that single
   trace.

2. **Persistent folded verify.**  Fresh mode builds a brand-new verifier
   ``Solver`` per CEGIS iteration, re-blasting the formula and discarding
   all learned clauses.  :class:`IncrementalContext` keeps one verifier
   per *instruction formula* (``_folded_solver``) and stages each
   candidate's folded negation into it, guarded by a fresh selector
   literal (``assert_folded``); the check itself is a one-assumption
   solve.  Consecutive candidates fold into heavily overlapping AIG
   (the interner shares every untouched datapath region, so most SAT
   variables and Tseitin clauses already exist), and learned clauses
   over the shared regions carry across candidates.  A symbolic-hole
   variant — assert once with holes free, assume one literal per hole
   bit — was measured against this and retired: extending the
   assignment over the full symbolic cone costs more per check than
   the folded stage-plus-solve on every workload shape.  Per-hole
   assumption scans survive where they win: ``assert_scan`` stages a
   fold with a single hole left free for polish/minimize probe loops,
   whose per-value checks are pure assumption solves with a reused
   trail prefix.  Retirement of a superseded instance (asserting its
   selector's negation) is deferred to the *next* staging on that
   formula, because retiring backtracks the shared core to level 0 and
   would destroy the SAT model a caller has yet to read.

3. **Encode-once plumbing.**  All per-formula verifiers share one
   verifier-side ``BitBlaster`` (and the context carries a shared
   guess-side one); cone-of-influence encoding in the solver facade
   makes the sharing sound *and* scoped — interned AIG regions common
   to several instructions are built once, yet each verifier's CNF (and
   therefore each SAT check's assignment) covers only its own
   instruction's cone.

Why one verifier per formula rather than one for all: a CDCL check must
extend its assignment to *every* variable in the solver, so a union
verifier pays O(total cones) of propagation per check no matter how
little changed — the per-check floor grows with instruction count and
swamps what assumption reuse saves.  Per-formula solvers keep each
check's universe at one instruction's cone while the shared blaster
keeps the encode-once economics.  UNSAT under the hole-bit assumptions
means the candidate is correct, while the solver (and its learned
clauses over the instruction's datapath) stays alive for the next
candidate.

Ackermann isolation: compiling an instruction's postconditions performs
fresh frame-address memory reads which append pairwise consistency side
conditions (the harvesting-order contract documented in
``per_instruction.instruction_formula``).  On a *shared* trace those reads
would accumulate across instructions, bloating every later formula with
other instructions' Ackermann pairs.  :class:`TraceEntry` therefore
snapshots each memory's read state before compiling an instruction and
restores it after, capturing exactly that instruction's side-condition
delta — each formula carries the evaluation-time conditions plus its own
fresh-read pairs, mirroring the fresh pipeline's formula shape.

Trace sharing is per-process: out-of-process backends (``"isolated"``
workers, ``"subprocess-dimacs"`` solvers) keep working because the
symbolic evaluation, compilation and formula construction all happen in
the engine process — remote solvers still receive plain DIMACS.
"""

from __future__ import annotations

from repro.ila.compiler import ConstraintCompiler
from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.oyster.memory import SymbolicMemory
from repro.oyster.symbolic import SymbolicEvaluator
from repro.smt import terms as T
from repro.smt.backends import resolve_solver_config
from repro.smt.bitblast import BitBlaster
from repro.smt.counters import COUNTERS
from repro.smt.solver import Solver
from repro.synthesis.preprocess import resolve_equalities

__all__ = [
    "TraceCache",
    "TraceEntry",
    "IncrementalContext",
    "resolve_pipeline",
    "candidate_assumptions",
]

#: The shared evaluation prefix (fresh mode uses ``i{index}!`` instead).
SHARED_PREFIX = "sh!"


def resolve_pipeline(pipeline, partial_eval=True):
    """Validate the ``pipeline`` knob; ``None`` selects the default.

    The default is ``"incremental"`` — except under the rewriter ablation
    (``partial_eval=False``), whose full-datapath verify queries are
    defined against the fresh pipeline, so it keeps getting one.
    Explicitly combining ``pipeline="incremental"`` with
    ``partial_eval=False`` is a contradiction and raises.
    """
    if pipeline is None:
        return "incremental" if partial_eval else "fresh"
    if pipeline not in ("fresh", "incremental"):
        raise ValueError(f"unknown pipeline {pipeline!r}")
    if pipeline == "incremental" and not partial_eval:
        raise ValueError(
            "pipeline='incremental' requires partial_eval=True; the "
            "rewriter ablation (partial_eval=False) is the fresh "
            "pipeline's baseline"
        )
    return pipeline


class TraceEntry:
    """One shared symbolic evaluation plus per-instruction formulas.

    All instructions are compiled eagerly, in spec order, at construction
    time: compilation mutates the trace's memory read state, so doing it
    up front keeps formulas deterministic and lets the isolated engine
    dispatch instructions across threads against a read-only entry.
    """

    def __init__(self, problem, prefix=SHARED_PREFIX):
        self.prefix = prefix
        evaluator = SymbolicEvaluator(
            problem.sketch, const_mems=problem.const_mems, prefix=prefix
        )
        self.trace = evaluator.run(problem.alpha.cycles)
        #: Evaluation-time Ackermann conditions, shared by every formula.
        self.base_conditions = tuple(self.trace.side_conditions)
        self.hole_names = {
            term.name for term in self.trace.hole_values.values()
            if term.is_var
        }
        self.compiled = {}
        self.deltas = {}
        self.formulas = {}
        arrays = self._uninterpreted_arrays()
        for instruction in problem.spec.instructions:
            self._compile_instruction(problem, instruction, arrays)

    def _uninterpreted_arrays(self):
        arrays = []
        for memory in self.trace.initial_mems.values():
            if isinstance(memory, SymbolicMemory):
                base = memory._base
                if all(base is not other for other in arrays):
                    arrays.append(base)
        return arrays

    def _compile_instruction(self, problem, instruction, arrays):
        """Compile one instruction with snapshot/restore read isolation.

        The compiler appends fresh frame-address reads to the shared
        memories; restoring ``_reads``/``_by_addr`` (and truncating the
        side-condition list) afterwards means the next instruction's
        fresh reads pair only against the evaluation-time reads, not
        against this instruction's.  Restoring also makes the fresh
        counter's names collide across instructions — deliberately so:
        the per-instruction formulas are separate ∃∀ queries, and the
        shared interned subterms are exactly what the encode-once
        verifier deduplicates.
        """
        trace = self.trace
        base_len = len(self.base_conditions)
        marks = [
            (array, len(array._reads), dict(array._by_addr))
            for array in arrays
        ]
        compiler = ConstraintCompiler(
            problem.spec, problem.alpha, trace, prefix=self.prefix
        )
        compiled = compiler.compile_instruction(instruction)
        delta = tuple(trace.side_conditions[base_len:])
        del trace.side_conditions[base_len:]
        for array, read_count, by_addr in marks:
            del array._reads[read_count:]
            array._by_addr.clear()
            array._by_addr.update(by_addr)

        side = T.and_(*self.base_conditions, *delta)
        antecedent = T.bv_and(side, compiled.antecedent())
        consequent = compiled.consequent()
        antecedent, consequent = resolve_equalities(
            antecedent, consequent, protected_names=self.hole_names
        )
        self.compiled[instruction.name] = compiled
        self.deltas[instruction.name] = delta
        self.formulas[instruction.name] = T.implies(antecedent, consequent)

    def hole_vars(self, sketch):
        """The shared hole variables, in sketch hole order."""
        return [self.trace.hole_values[hole.name] for hole in sketch.holes]


class TraceCache:
    """Caches :class:`TraceEntry` objects per (sketch, cycles, const_mems).

    Lives on the :class:`~repro.synthesis.problem.SynthesisProblem` (see
    ``SynthesisProblem.trace_cache``), so per-instruction synthesis,
    monolithic synthesis and control minimization over the same problem
    all reuse one symbolic evaluation.
    """

    def __init__(self):
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def _key(self, problem):
        const_mems = tuple(
            sorted((name, id(mem)) for name, mem in problem.const_mems.items())
        )
        return (id(problem.sketch), problem.alpha.cycles, const_mems)

    def entry(self, problem):
        """The shared entry for ``problem``, building it on first use."""
        key = self._key(problem)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            COUNTERS.trace_cache_misses += 1
            _METRICS.inc("trace_cache.misses")
            with _obs.span("trace_cache.build",
                           cycles=problem.alpha.cycles):
                entry = TraceEntry(problem)
            self._entries[key] = entry
        else:
            self.hits += 1
            COUNTERS.trace_cache_hits += 1
            _METRICS.inc("trace_cache.hits")
            _obs.event("trace_cache.hit")
        return entry


class IncrementalContext:
    """Shared encode-once solver state for a run of CEGIS instances.

    Holds one assumption-based verifier per instruction formula
    (``verifier_for``), all encoding against one shared verifier-side
    ``BitBlaster``, plus the shared guess-side blaster.  A context must
    be used serially: share one across a sequential per-instruction
    loop, or give each dispatch thread its own.

    ``config`` is a :class:`repro.smt.backends.SolverConfig` selecting
    the decision procedure; candidate checks on a backend without native
    assumption support degrade to per-check DIMACS re-export (the facade
    handles it), so the context stays correct — just without the
    learned-clause reuse that motivates it.  ``execution``/``worker_pool``
    are the deprecated spellings.
    """

    def __init__(self, execution=None, worker_pool=None, config=None):
        config = resolve_solver_config(config, execution=execution,
                                       worker_pool=worker_pool)
        self.config = config
        #: One AIG for every per-formula verifier: subterms interned
        #: across instructions blast once, while cone-of-influence
        #: encoding keeps each verifier's CNF scoped to its own formula.
        self.verifier_blaster = BitBlaster()
        self.guess_blaster = BitBlaster()
        self._verifiers = {}
        self._folded = {}
        #: formula -> (instance key, live selector) for the one guarded
        #: instance currently staged on that formula's folded verifier.
        self._active = {}
        self._counter = 0

    def verifier_for(self, formula):
        """The verifier holding ``¬formula``, asserting it on first use.

        Subsequent candidate checks against the returned solver are pure
        assumption solves: same clause DB, same learned clauses, and a
        mostly-unchanged assumption prefix for the core's trail reuse.
        """
        solver = self._verifiers.get(formula)
        if solver is None:
            solver = Solver(blaster=self.verifier_blaster,
                            **self.config.solver_kwargs())
            solver.add(T.bv_not(formula))
            self._verifiers[formula] = solver
        return solver

    # -- the folded verify tier ------------------------------------------

    def _folded_solver(self, formula):
        solver = self._folded.get(formula)
        if solver is None:
            solver = Solver(blaster=self.verifier_blaster,
                            **self.config.solver_kwargs())
            self._folded[formula] = solver
        return solver

    def _stage(self, formula, key, substitution):
        """Stage one guarded instance of ``¬formula`` with ``substitution``
        folded in; retires the formula's previous instance first.

        Retirement is deferred to the *next* staging rather than done by
        the caller because retiring (a permanent ``¬selector`` assert)
        backtracks the shared core to level 0, which destroys the model
        of a SAT verdict the caller has not read yet.
        """
        solver = self._folded_solver(formula)
        active = self._active.get(formula)
        if active is not None:
            if active[0] == key:
                return solver, active[1]
            # Unit ¬selector satisfies the retired instance's root
            # clauses at level 0, so the core's between-solves
            # simplification deletes them; the shared Tseitin
            # definitions below stay for structure sharing.
            solver.add(T.bv_not(active[1]))
        self._counter += 1
        selector = T.bv_var(f"cegis!fold!{self._counter}", 1)
        solver.add(T.implies(selector,
                             T.bv_not(T.substitute(formula, substitution))))
        self._active[formula] = (key, selector)
        return solver, selector

    def assert_folded(self, formula, substitution):
        """Stage a candidate-folded instance of ``¬formula``; returns
        ``(solver, selector)`` — check under ``assumptions=[selector]``.

        Substituting the candidate's hole constants lets the term
        rewriter fold the unused datapath away — the same collapse the
        fresh pipeline gets per check — so verify queries run on a
        few-thousand-variable cone instead of the full symbolic-hole
        formula.  Unlike fresh, the solver is *persistent* per formula:
        consecutive candidates differ in a hole or two, so their folded
        instances share most interned AIG nodes — and therefore SAT
        variables — which keeps the encode delta small and lets learned
        clauses carry over between candidates (a repeat UNSAT proof is
        often conflict-free).  The staged instance is retired
        automatically when the next one is staged.
        """
        self._counter += 1
        return self._stage(formula, ("fold", self._counter), substitution)

    def assert_scan(self, formula, fixed_values, hole_by_name, free_name):
        """Stage ``¬formula`` folded over every hole except ``free_name``;
        returns ``(solver, selector)``.

        This is the per-hole scan primitive behind polish and
        minimization: the fixed holes collapse the datapath as in
        :meth:`assert_folded`, but the scanned hole stays symbolic, so
        each trial value is a pure assumption check —
        ``[selector] + candidate_assumptions(...)`` — with zero new
        encoding.  Consecutive probes share the selector and the scanned
        hole's low bits, which is exactly the assumption-prefix shape
        the core's trail reuse keeps.  Re-requesting the same scan (same
        formula, same fixed values, same free hole) returns the live
        instance instead of staging a new one.
        """
        key = ("scan", free_name,
               tuple(sorted((name, value)
                            for name, value in fixed_values.items()
                            if name != free_name)))
        substitution = {
            hole_by_name[name]: T.bv_const(value, hole_by_name[name].width)
            for name, value in fixed_values.items() if name != free_name
        }
        return self._stage(formula, key, substitution)


def candidate_assumptions(hole_by_name, candidate):
    """Per-bit assumption literals pinning a candidate's hole constants.

    ``hole_by_name`` maps names to hole variable terms and ``candidate``
    maps the same names to ints.  Extracting single bits of an
    already-blasted variable (and complementing them) creates no AIG
    nodes, so a candidate check is pure solving — zero encode cost.
    """
    assumptions = []
    for name, value in candidate.items():
        var = hole_by_name[name]
        for i in range(var.width):
            bit = T.bv_extract(var, i, i)
            if not (value >> i) & 1:
                bit = T.bv_not(bit)
            assumptions.append(bit)
    return assumptions
