"""Crash-atomic persistence for resume handles.

A resume handle is only worth its durability story: a handle that a crash
can tear mid-write is *worse* than no handle, because the resuming run
dies on a ``json.JSONDecodeError`` instead of simply redoing the work.
:func:`save_resume_handle` therefore writes through the
tempfile + fsync + ``os.replace`` protocol (``repro.runtime.persist``),
and :func:`load_resume_handle` converts every decode failure into a typed
:class:`~repro.synthesis.result.MalformedResumeHandle` carrying a
machine-readable reason, so callers can branch on "torn" vs "foreign" vs
"too new" instead of pattern-matching tracebacks.
"""

from __future__ import annotations

import json
import os

from repro.runtime.persist import atomic_write_json
from repro.synthesis.result import (
    MalformedResumeHandle,
    PartialSynthesisResult,
)

__all__ = ["save_resume_handle", "load_resume_handle"]


def save_resume_handle(partial, path, fsync=True):
    """Atomically write ``partial`` (or its dict form) as a handle file.

    A ``kill -9`` at any instant leaves either the previous handle or the
    new one on disk, never a torn mixture.  Returns ``path``.
    """
    if isinstance(partial, PartialSynthesisResult):
        partial = partial.to_dict()
    return atomic_write_json(path, partial, fsync=fsync)


def load_resume_handle(path):
    """Load a handle written by :func:`save_resume_handle`.

    Raises :class:`MalformedResumeHandle` (with ``reason`` and ``path``
    set) on torn/corrupt JSON, a foreign schema, an unknown newer
    version, or missing fields.  A genuinely absent file propagates
    ``FileNotFoundError`` unchanged — "never written" and "written but
    unreadable" call for different recoveries.
    """
    path = os.fspath(path)
    with open(path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        fault = MalformedResumeHandle(
            f"resume handle {path!r} is torn or corrupt: {exc}",
            reason="torn-or-corrupt", path=path,
        )
        raise fault from exc
    try:
        return PartialSynthesisResult.from_dict(data)
    except MalformedResumeHandle as exc:
        exc.path = path
        raise
