"""Feedback for unsynthesizable sketches (the paper's Section 5.3 wish).

When control logic synthesis fails, the solver has proved that no hole
constants satisfy *some* conjunction of postconditions — but Equation (2)
alone does not say which architectural state update the datapath cannot
implement.  ``diagnose_instruction`` re-runs CEGIS once per postcondition
(and once per frame condition), reporting which of them are individually
implementable; the unimplementable ones point at the missing or wrong
datapath hardware.

A condition can also be individually implementable while the conjunction is
not (the datapath can do either update but not both at once); the diagnosis
reports that case as a *conflict* over the minimal failing subset found by
greedy growth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ila.compiler import ConstraintCompiler
from repro.oyster.symbolic import SymbolicEvaluator
from repro.smt import terms as T
from repro.synthesis.cegis import cegis_solve
from repro.synthesis.result import SynthesisFailure, SynthesisTimeout

__all__ = ["diagnose_instruction", "InstructionDiagnosis"]


@dataclass
class InstructionDiagnosis:
    instruction_name: str
    feasible: list = field(default_factory=list)    # condition labels
    infeasible: list = field(default_factory=list)  # condition labels
    conflict: list = field(default_factory=list)    # minimal failing subset
    elapsed: float = 0.0

    @property
    def ok(self):
        return not self.infeasible and not self.conflict

    def summary(self):
        lines = [f"diagnosis of {self.instruction_name!r}:"]
        for label in self.feasible:
            lines.append(f"  [ok]       {label}")
        for label in self.infeasible:
            lines.append(
                f"  [missing]  {label}: no control makes the datapath "
                "implement this update — the sketch lacks the hardware"
            )
        if self.conflict:
            lines.append(
                "  [conflict] individually implementable, but not "
                f"simultaneously: {self.conflict}"
            )
        return "\n".join(lines)


def diagnose_instruction(problem, instruction, timeout_per_condition=60.0):
    """Explain why synthesis fails (or confirm it succeeds) for one
    instruction."""
    started = time.monotonic()
    prefix = "diag!"
    evaluator = SymbolicEvaluator(
        problem.sketch, const_mems=problem.const_mems, prefix=prefix
    )
    trace = evaluator.run(problem.alpha.cycles)
    compiler = ConstraintCompiler(problem.spec, problem.alpha, trace,
                                  prefix=prefix)
    compiled = compiler.compile_instruction(instruction)
    side = T.and_(*trace.side_conditions)
    antecedent = T.bv_and(side, compiled.antecedent())
    hole_vars = [
        trace.hole_values[hole.name] for hole in problem.sketch.holes
    ]
    conditions = list(compiled.postconditions) + list(
        compiled.frame_conditions
    )

    def solvable(condition_terms):
        formula = T.implies(antecedent, T.and_(*condition_terms))
        try:
            cegis_solve(formula, hole_vars, timeout=timeout_per_condition)
            return True
        except (SynthesisFailure, SynthesisTimeout):
            return False

    diagnosis = InstructionDiagnosis(instruction.name)
    for label, term in conditions:
        if solvable([term]):
            diagnosis.feasible.append(label)
        else:
            diagnosis.infeasible.append(label)
    if not diagnosis.infeasible:
        # Each update works alone; find a minimal failing combination by
        # greedily growing the set.
        chosen = []
        chosen_labels = []
        for label, term in conditions:
            if not solvable(chosen + [term]):
                diagnosis.conflict = chosen_labels + [label]
                break
            chosen.append(term)
            chosen_labels.append(label)
    diagnosis.elapsed = time.monotonic() - started
    return diagnosis
