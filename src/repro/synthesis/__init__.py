"""Control logic synthesis (Section 3.3).

``synthesize`` is the main entry point: given a ``SynthesisProblem`` (datapath
sketch + ILA spec + abstraction function) it fills every hole with
correct-by-construction control logic, using either the per-instruction
strategy with the control union ⊔ (the paper's optimization, Section 3.3.1)
or the monolithic Equation-(1) formulation (the † rows of Table 1).
"""

from repro.synthesis.problem import SynthesisProblem
from repro.synthesis.engine import synthesize
from repro.synthesis.result import (
    SynthesisResult,
    PartialSynthesisResult,
    InstructionSolution,
    SynthesisError,
    SynthesisTimeout,
    SynthesisFailure,
    MalformedResumeHandle,
)
from repro.synthesis.handles import load_resume_handle, save_resume_handle
from repro.synthesis.cegis import cegis_solve
from repro.synthesis.diagnosis import diagnose_instruction, InstructionDiagnosis
from repro.synthesis.incremental import (
    IncrementalContext,
    TraceCache,
    resolve_pipeline,
)
from repro.synthesis.minimize import minimize_solutions, MinimizationReport
from repro.synthesis.verifier import verify_design, VerificationResult

__all__ = [
    "SynthesisProblem",
    "synthesize",
    "SynthesisResult",
    "PartialSynthesisResult",
    "InstructionSolution",
    "SynthesisError",
    "SynthesisTimeout",
    "SynthesisFailure",
    "MalformedResumeHandle",
    "save_resume_handle",
    "load_resume_handle",
    "cegis_solve",
    "diagnose_instruction",
    "InstructionDiagnosis",
    "IncrementalContext",
    "TraceCache",
    "resolve_pipeline",
    "minimize_solutions",
    "MinimizationReport",
    "verify_design",
    "VerificationResult",
]
