"""Control minimization: shrink the generated logic (Section 5.3's wish).

Per-instruction synthesis assigns every hole a concrete value for every
instruction — including *don't-care* signals, where the solver's arbitrary
pick fragments the control union into needless if-tree branches (the paper
notes its generated HDL is ~3.5x the hand-written size for this reason).

``minimize_solutions`` greedily re-homogenizes the solutions: for each hole
it walks values from most- to least-popular and asks, per instruction, "is
this instruction still correct if its value for this hole is replaced by
the popular one?"  Each check is a single concrete verification query (the
cheap direction of CEGIS — no search).  Signals that were don't-cares
collapse into one group; the union then emits a bare constant or a much
smaller dispatch tree.

Soundness: every accepted change re-proves the instruction's full
Equation (2) formula with the new constants, so the minimized solutions are
exactly as correct-by-construction as the originals.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from repro.smt import terms as T
from repro.smt.solver import Solver, UNSAT
from repro.synthesis.incremental import (
    IncrementalContext,
    candidate_assumptions,
    resolve_pipeline,
)
from repro.synthesis.per_instruction import instruction_formula
from repro.synthesis.result import InstructionSolution

__all__ = ["minimize_solutions", "MinimizationReport"]


@dataclass
class MinimizationReport:
    checks: int = 0
    merged: int = 0
    elapsed: float = 0.0
    distinct_before: dict = field(default_factory=dict)
    distinct_after: dict = field(default_factory=dict)

    def summary(self):
        lines = [
            f"control minimization: {self.merged} values merged in "
            f"{self.checks} checks ({self.elapsed:.1f}s)"
        ]
        for hole in sorted(self.distinct_before):
            before = self.distinct_before[hole]
            after = self.distinct_after[hole]
            if before != after:
                lines.append(f"  {hole}: {before} -> {after} groups")
        return "\n".join(lines)


def _verifies(formula, trace, hole_values, timeout, probe_hole, ctx=None):
    if ctx is not None:
        # Scan path: fold every hole except the one being merged into
        # the formula's persistent verifier (staged once per
        # instruction-and-fixed-values, reused across merge targets),
        # then decide this probe as a pure assumption check on the
        # merged hole's bits.
        solver, sel = ctx.assert_scan(
            formula, hole_values, trace.hole_values, probe_hole)
        assumptions = [sel] + candidate_assumptions(
            {probe_hole: trace.hole_values[probe_hole]},
            {probe_hole: hole_values[probe_hole]},
        )
        return solver.check(timeout=timeout,
                            assumptions=assumptions) is UNSAT
    substitution = {
        trace.hole_values[name]: T.bv_const(
            value, trace.hole_values[name].width
        )
        for name, value in hole_values.items()
    }
    solver = Solver()
    solver.add(T.bv_not(T.substitute(formula, substitution)))
    return solver.check(timeout=timeout) is UNSAT


def minimize_solutions(problem, solutions, timeout_per_check=20.0,
                       max_targets=3, pipeline=None):
    """Return (new solutions, report) with don't-care values merged.

    ``solutions`` come from per-instruction synthesis (or the monolithic
    mode); the originals are not mutated.  ``max_targets`` bounds how many
    candidate merge values are tried per hole (most popular first) — the
    don't-care collapse almost always lands on the first.

    ``pipeline="incremental"`` (the default) serves every formula from
    the problem's shared trace cache — free when synthesis already ran
    incrementally — and runs all merge probes as assumption checks
    against per-formula persistent verifiers; ``"fresh"`` re-derives each formula
    under a ``min{index}!`` prefix and builds a solver per probe.
    """
    started = time.monotonic()
    pipeline = resolve_pipeline(pipeline)
    report = MinimizationReport()
    instructions = {i.name: i for i in problem.spec.instructions}
    formulas = {}
    ctx = None
    if pipeline == "incremental":
        ctx = IncrementalContext()
        entry = problem.trace_cache().entry(problem)
        for solution in solutions:
            formulas[solution.instruction_name] = (
                entry.formulas[solution.instruction_name], entry.trace
            )
    else:
        # Re-derive each instruction's formula (prefix matches synthesis).
        for index, solution in enumerate(solutions):
            instruction = instructions[solution.instruction_name]
            formula, trace, _ = instruction_formula(
                problem, instruction, f"min{index}!"
            )
            formulas[solution.instruction_name] = (formula, trace)

    current = {
        solution.instruction_name: dict(solution.hole_values)
        for solution in solutions
    }
    hole_names = [hole.name for hole in problem.sketch.holes]
    for hole in hole_names:
        values = [current[name][hole] for name in current]
        report.distinct_before[hole] = len(set(values))
        popularity = [value for value, _ in Counter(values).most_common()]
        for target in popularity[:max_targets]:
            for name in current:
                if current[name][hole] == target:
                    continue
                candidate = dict(current[name])
                candidate[hole] = target
                formula, trace = formulas[name]
                report.checks += 1
                if _verifies(formula, trace, candidate,
                             timeout_per_check, hole, ctx=ctx):
                    current[name] = candidate
                    report.merged += 1
        report.distinct_after[hole] = len(
            {current[name][hole] for name in current}
        )
    new_solutions = [
        InstructionSolution(
            instruction_name=solution.instruction_name,
            hole_values=current[solution.instruction_name],
            iterations=solution.iterations,
            solve_time=solution.solve_time,
        )
        for solution in solutions
    ]
    report.elapsed = time.monotonic() - started
    return new_solutions, report
