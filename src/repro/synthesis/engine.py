"""The synthesis driver: Figure 4's dotted box.

``synthesize`` runs either strategy, applies the control union, splices the
generated control logic back into the sketch at a dataflow-legal position,
and returns a ``SynthesisResult`` whose ``completed_design`` is a hole-free
Oyster design.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from contextlib import contextmanager

from repro.obs import metrics as _metrics
from repro.obs import trace as _obs
from repro.oyster import ast as oy
from repro.oyster.analysis import expr_vars, stmt_uses
from repro.oyster.typecheck import check_design
from repro.runtime import (
    Budget,
    BudgetExhausted,
    RetryPolicy,
    SolverUnknown,
    SolverWorkerPool,
)
from repro.smt import counters as _counters
from repro.smt.backends import (
    SolverBackend,
    available_backends,
    resolve_solver_config,
)
from repro.synthesis.incremental import IncrementalContext, resolve_pipeline
from repro.synthesis.independence import check_instruction_independence
from repro.synthesis.monolithic import synthesize_monolithic_solutions
from repro.synthesis.per_instruction import synthesize_instruction
from repro.synthesis.result import (
    PartialSynthesisResult,
    SynthesisError,
    SynthesisResult,
    SynthesisTimeout,
)
from repro.synthesis.union import control_union

__all__ = ["synthesize", "splice_control"]


def synthesize(problem, mode="per_instruction", timeout=None,
               max_iterations=256, check_independence=True,
               progress=None, partial_eval=True, budget=None,
               retry_policy=None, on_timeout="raise", resume_from=None,
               execution=None, worker_pool=None, max_workers=None,
               pipeline=None, config=None, backend=None, checkpoint=None):
    """Run control logic synthesis.

    Parameters
    ----------
    mode:
        ``"per_instruction"`` (the Section 3.3.1 optimization, default) or
        ``"monolithic"`` (Equation (1), the Table 1 † configuration).
    config:
        A :class:`repro.smt.backends.SolverConfig` bundling the solver
        knobs (``backend``, ``worker_pool``, ``pipeline``,
        ``max_workers``), resolved exactly once at this boundary and
        threaded down the whole stack.  Mutually exclusive with passing
        the individual knobs below.
    backend:
        The decision procedure for every solver check: a registered
        backend name (``"inprocess"``, ``"isolated"``,
        ``"subprocess-dimacs"``, ``"portfolio"``, or anything added via
        ``repro.smt.backends.register_backend``), a live
        ``SolverBackend`` instance, or ``None`` for the process default
        (``$REPRO_BACKEND`` or ``"inprocess"``).  ``"isolated"`` routes
        checks through sandboxed worker subprocesses and dispatches
        independent per-instruction problems concurrently across the
        pool; worker deaths are classified, charged to the budget, and
        retried on fresh workers.
    pipeline:
        ``"incremental"`` (default when ``partial_eval`` is on) evaluates
        the sketch once per problem (shared trace cache), asserts each
        instruction's negated formula once into a shared selector-guarded
        verifier, and checks candidates under per-bit assumptions.
        ``"fresh"`` re-evaluates and re-encodes per instruction and per
        iteration — the ablation baseline (and the only pipeline the
        ``partial_eval=False`` rewriter ablation supports).
        Deprecated as a direct kwarg; prefer ``config=``.
    timeout:
        Overall wall-clock budget in seconds; ``SynthesisTimeout`` is raised
        when exceeded (this is how the paper's Timeout row reproduces).
    check_independence:
        Verify the instruction-independence property before trusting the
        per-instruction strategy.
    progress:
        Optional callback ``progress(instruction_name, solution)``.
    budget:
        A ``repro.runtime.Budget`` (wall-clock/conflict/memory caps) for
        the whole run; combines with ``timeout`` (the tighter wins).  Each
        instruction runs under a child slice, so a mid-loop expiry loses
        only the in-flight instruction, never the completed ones.
    retry_policy:
        A ``repro.runtime.RetryPolicy`` applied inside CEGIS: retryable
        UNKNOWNs (conflict-cap hits, injected faults) restart with an
        escalated conflict budget and a reseeded decision order.
    on_timeout:
        ``"raise"`` (default): budget exhaustion and solver faults raise,
        with the :class:`PartialSynthesisResult` attached as ``.partial``.
        ``"partial"``: they *return* the partial result instead, carrying
        every completed instruction solution, per-instruction stats, the
        machine-readable stop reason, and the resume handle.
    resume_from:
        A :class:`PartialSynthesisResult` (or its ``to_dict()`` form) from
        an earlier run of the same problem/mode: completed instructions
        are reused verbatim and only the pending ones are solved.
    execution:
        Deprecated PR-2 spelling of ``backend`` (``"inprocess"`` /
        ``"isolated"``); emits a ``DeprecationWarning``.
    worker_pool:
        A caller-owned ``repro.runtime.SolverWorkerPool`` for the
        ``"isolated"`` backend.  When omitted, the engine creates one
        sized by ``max_workers`` and shuts it down (asserting no orphans)
        before returning.  Deprecated as a direct kwarg; prefer
        ``config=SolverConfig(worker_pool=...)``.
    max_workers:
        Size of the engine-owned pool (ignored when ``worker_pool`` is
        given); also the per-instruction dispatch width.

    checkpoint:
        Optional callable invoked with a fresh
        :class:`PartialSynthesisResult` (reason ``"checkpoint"``) after
        *every* completed instruction — the periodic durability hook a
        long-lived service needs, instead of a handle that only exists
        once the run has already died.  Each snapshot carries every
        solution completed so far and is a valid ``resume_from`` handle.
        Returning ``False`` (exactly) asks the engine to stop at this
        clean boundary: the run degrades like budget exhaustion with
        reason ``"drained"`` — the graceful-shutdown path.  Monolithic
        mode has no per-instruction boundary and never checkpoints.

    A ``KeyboardInterrupt`` mid-run follows the same degradation contract
    as budget exhaustion: live workers are terminated, and the partial
    result (reason ``"interrupted"``, resumable) is returned or attached.
    ``SIGTERM`` delivered to the main thread is wired to the same
    contract as ``SIGINT``: the engine degrades to the same resumable
    partial result and reaps live workers/subprocess solvers.
    """
    started = time.monotonic()
    if on_timeout not in ("raise", "partial"):
        # Validate eagerly: a typo'd mode must not lurk until the first
        # run that actually times out.
        raise ValueError(f"unknown on_timeout mode {on_timeout!r}")
    config = resolve_solver_config(config, backend=backend,
                                   execution=execution,
                                   worker_pool=worker_pool,
                                   pipeline=pipeline,
                                   max_workers=max_workers)
    backend_name = config.backend_name
    if (not isinstance(config.backend, SolverBackend)
            and backend_name not in available_backends()):
        # Validate eagerly, before any evaluation work: a typo'd backend
        # must not lurk until the first solver construction.
        raise ValueError(
            f"unknown solver backend {backend_name!r}; registered: "
            f"{', '.join(available_backends())}"
        )
    pipeline = resolve_pipeline(config.pipeline, partial_eval)
    # Freeze the resolved pipeline into the config so every downstream
    # layer sees the same choice without re-resolving.
    config = config.replace(pipeline=pipeline)
    if budget is None:
        budget = Budget(timeout=timeout)
    elif timeout is not None:
        budget = budget.child(timeout=timeout)
    owned_pool = None
    if backend_name == "isolated":
        if config.worker_pool is None:
            owned_pool = SolverWorkerPool(size=config.max_workers or 2)
            config = config.replace(worker_pool=owned_pool)
        if retry_policy is None:
            # Isolation without retries would turn every transient worker
            # death into a lost instruction; default to the standard
            # escalation policy so crashes land on fresh workers.
            retry_policy = RetryPolicy()
    try:
        with _sigterm_degrades(), \
                _obs.span("synthesis.run", problem=problem.name, mode=mode,
                          backend=backend_name, execution=backend_name,
                          pipeline=pipeline):
            return _synthesize(
                problem, mode, started, max_iterations, check_independence,
                progress, partial_eval, budget, retry_policy, on_timeout,
                resume_from, config, pipeline, checkpoint,
            )
    finally:
        if owned_pool is not None:
            accounting = owned_pool.shutdown()
            if accounting["orphans"]:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"{accounting['orphans']} solver worker(s) survived "
                    "pool shutdown"
                )


@contextmanager
def _sigterm_degrades():
    """Wire SIGTERM to the SIGINT degradation contract for this run.

    A service manager's polite stop must not differ from Ctrl-C: both
    degrade to the same resumable ``PartialSynthesisResult`` and reap
    live workers.  Signals are only deliverable to the main thread, and
    handlers are only installable *from* it, so dispatch-thread runs
    (e.g. service job runners) leave the process handler untouched — the
    daemon owns SIGTERM there and drains via the checkpoint hook instead.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    try:
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _synthesize(problem, mode, started, max_iterations, check_independence,
                progress, partial_eval, budget, retry_policy, on_timeout,
                resume_from, config, pipeline, checkpoint=None):
    backend_name = config.backend_name
    worker_pool = config.worker_pool
    isolated = backend_name == "isolated"
    stats = {"mode": mode, "backend": backend_name,
             "execution": backend_name, "pipeline": pipeline}
    encode_before = _counters.snapshot()
    # The trace's opening metrics snapshot is taken at the same point as
    # ``encode_before`` (and the closing one where ``stats["counters"]``
    # is computed), so a report's first-to-last encode deltas reproduce
    # the run's own accounting exactly.
    _obs.event("metrics.snapshot", **_metrics.snapshot())
    resume_solutions = _resume_solutions(problem, mode, resume_from)
    if resume_solutions:
        stats["resumed_instructions"] = sorted(resume_solutions)
    incremental_ctx = None
    if pipeline == "incremental":
        # Build the shared trace (and every instruction's formula) up
        # front: the cost is paid once, and the isolated engine can then
        # dispatch against a read-only entry.
        problem.trace_cache().entry(problem)
        if not isolated:
            # Serial execution shares one encode-once context across the
            # instruction loop; isolated dispatch threads each build
            # their own (a context is serial by contract).
            incremental_ctx = IncrementalContext(config=config)

    if mode == "per_instruction":
        if check_independence:
            stats["independence_notes"] = check_instruction_independence(
                problem
            )
        solved = dict(resume_solutions)
        faults = []

        def _checkpoint_ok(solved_now):
            """Emit a checkpoint snapshot; ``False`` means stop here."""
            if checkpoint is None:
                return True
            snap = _partial(problem, mode, solved_now, "checkpoint",
                            started, stats, faults, close_trace=False)
            return checkpoint(snap) is not False

        try:
            if isolated:
                stop_fault = _solve_concurrently(
                    problem, solved, faults, budget, retry_policy,
                    max_iterations, partial_eval, config, progress,
                    _checkpoint_ok,
                )
                if stop_fault is not None:
                    partial = _partial(problem, mode, solved,
                                       stop_fault.reason, started, stats,
                                       faults)
                    return _degrade(partial, stop_fault, on_timeout)
            else:
                for index, instruction in enumerate(
                        problem.spec.instructions):
                    if instruction.name in solved:
                        continue
                    try:
                        budget.check()
                        solution = synthesize_instruction(
                            problem, instruction, index,
                            budget=budget.child(),
                            retry_policy=retry_policy,
                            max_iterations=max_iterations,
                            partial_eval=partial_eval,
                            config=config,
                            incremental_ctx=incremental_ctx,
                        )
                    except BudgetExhausted as fault:
                        # Budget spent (deadline/memory/iterations): stop
                        # now and hand back everything already solved.
                        partial = _partial(problem, mode, solved,
                                           fault.reason, started, stats,
                                           faults)
                        return _degrade(partial, fault, on_timeout)
                    except SolverUnknown as fault:
                        # A non-budget fault on this one instruction:
                        # record it and keep going — later instructions may
                        # still solve, which maximizes the work a resume
                        # can reuse.
                        faults.append((instruction.name, fault.reason))
                        continue
                    solved[instruction.name] = solution
                    if progress is not None:
                        progress(instruction.name, solution)
                    if not _checkpoint_ok(solved):
                        partial = _partial(problem, mode, solved, "drained",
                                           started, stats, faults)
                        return _degrade(
                            partial,
                            BudgetExhausted(
                                "synthesis drained at a checkpoint",
                                reason="drained"),
                            on_timeout)
        except KeyboardInterrupt as fault:
            if worker_pool is not None:
                worker_pool.terminate_inflight()
            partial = _partial(problem, mode, solved, "interrupted",
                               started, stats, faults)
            return _degrade(partial, fault, on_timeout)
        if faults:
            reason = faults[0][1]
            partial = _partial(problem, mode, solved, reason, started,
                               stats, faults)
            fault = SolverUnknown(
                f"{len(faults)} instruction(s) came back unknown "
                f"({reason}, ...)", reason=reason,
            )
            return _degrade(partial, fault, on_timeout)
        solutions = [solved[i.name] for i in problem.spec.instructions]
    elif mode == "monolithic":
        try:
            solutions, cegis_stats = synthesize_monolithic_solutions(
                problem, budget=budget, retry_policy=retry_policy,
                max_iterations=max_iterations, config=config,
            )
        except KeyboardInterrupt as fault:
            if worker_pool is not None:
                worker_pool.terminate_inflight()
            partial = _partial(problem, mode, {}, "interrupted", started,
                               stats, [])
            return _degrade(partial, fault, on_timeout)
        except (BudgetExhausted, SolverUnknown) as fault:
            partial = _partial(problem, mode, {}, fault.reason, started,
                               stats, [])
            return _degrade(partial, fault, on_timeout)
        stats["cegis"] = cegis_stats.as_dict()
    else:
        raise ValueError(f"unknown synthesis mode {mode!r}")

    hole_exprs, control_stmts = control_union(problem, solutions)
    completed = splice_control(problem.sketch, control_stmts)
    # Whole-run encode accounting (partial results instead carry the
    # per-instruction deltas on their completed solutions).
    stats["counters"] = _counters.delta_since(encode_before)
    _obs.event("metrics.snapshot", **_metrics.snapshot())
    return SynthesisResult(
        problem_name=problem.name,
        mode=mode,
        hole_exprs=hole_exprs,
        control_stmts=control_stmts,
        completed_design=completed,
        per_instruction=solutions,
        elapsed=time.monotonic() - started,
        stats=stats,
    )


def _solve_concurrently(problem, solved, faults, budget, retry_policy,
                        max_iterations, partial_eval, config, progress,
                        checkpoint_ok=None):
    """Dispatch pending per-instruction problems across the worker pool.

    Instruction independence (Section 3.3.1) is what makes this sound:
    each problem is a self-contained ∃∀ query, so they may solve in any
    order on any worker.  Mutates ``solved``/``faults`` (spec order is
    restored for ``faults`` so partial results stay deterministic) and
    returns the first ``BudgetExhausted`` if the shared budget tripped,
    else ``None``.

    A ``KeyboardInterrupt`` while waiting cancels undispatched work,
    hard-kills in-flight workers (their submitter threads observe EOF and
    unwind promptly), and propagates to the caller's degradation path.
    """
    worker_pool = config.worker_pool
    pending = [
        (index, instruction)
        for index, instruction in enumerate(problem.spec.instructions)
        if instruction.name not in solved
    ]
    spec_order = {i.name: n for n, i in enumerate(problem.spec.instructions)}
    stop_fault = None
    executor = ThreadPoolExecutor(
        max_workers=worker_pool.size, thread_name_prefix="synth-dispatch"
    )
    # Dispatch threads start with empty span stacks; pinning the parent
    # explicitly keeps their spans attached to the run instead of orphaned.
    # The trace context is thread-local too, so it is captured here and
    # re-entered inside each dispatch thread the same way.
    parent_span = _obs.current_span_id()
    trace_ctx = _obs.current_trace_id()
    try:
        futures = {}
        for index, instruction in pending:
            future = executor.submit(
                _solve_one, problem, instruction, index, budget,
                retry_policy, max_iterations, partial_eval, config,
                parent_span, trace_ctx,
            )
            futures[future] = instruction
        for future in as_completed(futures):
            instruction = futures[future]
            try:
                solution = future.result()
            except BudgetExhausted as fault:
                # Keep draining: the siblings share the budget, so they
                # trip the same cap almost immediately, and any that
                # slipped in under the wire are still worth keeping.
                if stop_fault is None:
                    stop_fault = fault
                continue
            except SolverUnknown as fault:
                faults.append((instruction.name, fault.reason))
                continue
            solved[instruction.name] = solution
            if progress is not None:
                progress(instruction.name, solution)
            if checkpoint_ok is not None and not checkpoint_ok(solved):
                # Drain requested: the in-flight siblings are killed (they
                # stay pending and resumable), the finished ones are kept.
                stop_fault = BudgetExhausted(
                    "synthesis drained at a checkpoint", reason="drained")
                worker_pool.terminate_inflight()
                break
    except KeyboardInterrupt:
        worker_pool.terminate_inflight()
        raise
    finally:
        # After an interrupt the killed workers EOF their submitter
        # threads, so this wait is bounded, and it guarantees no dispatch
        # thread races the pool teardown.
        executor.shutdown(wait=True, cancel_futures=True)
    faults.sort(key=lambda item: spec_order[item[0]])
    return stop_fault


def _solve_one(problem, instruction, index, budget, retry_policy,
               max_iterations, partial_eval, config, span_parent=None,
               trace_ctx=None):
    # incremental_ctx stays None here: each dispatch thread gets its own
    # context inside cegis_solve (an IncrementalContext is serial), while
    # the precompiled TraceEntry is still shared read-only.
    with _obs.trace_context(trace_ctx), \
            _obs.span("synthesis.dispatch", span_parent=span_parent,
                      instr=instruction.name):
        budget.check()
        return synthesize_instruction(
            problem, instruction, index, budget=budget.child(),
            retry_policy=retry_policy, max_iterations=max_iterations,
            partial_eval=partial_eval, config=config,
        )


def _resume_solutions(problem, mode, resume_from):
    """Validate a resume handle; returns {instruction name: solution}."""
    if resume_from is None:
        return {}
    if isinstance(resume_from, dict):
        resume_from = PartialSynthesisResult.from_dict(resume_from)
    if resume_from.problem_name != problem.name:
        raise SynthesisError(
            f"resume handle is for problem {resume_from.problem_name!r}, "
            f"not {problem.name!r}"
        )
    if resume_from.mode != mode:
        raise SynthesisError(
            f"resume handle was produced in {resume_from.mode!r} mode, "
            f"cannot resume in {mode!r}"
        )
    known = {i.name for i in problem.spec.instructions}
    solutions = {}
    for solution in resume_from.completed:
        if solution.instruction_name not in known:
            raise SynthesisError(
                f"resume handle solves {solution.instruction_name!r}, "
                "which is not in the specification"
            )
        solutions[solution.instruction_name] = solution
    return solutions


def _partial(problem, mode, solved, reason, started, stats, faults,
             close_trace=True):
    # Degraded runs still close their trace with a metrics snapshot, so a
    # truncated trace's encode deltas cover everything up to the stop.
    # Mid-run checkpoint snapshots pass close_trace=False: the run is
    # still going, so they must not emit a closing snapshot.
    if close_trace:
        _obs.event("metrics.snapshot", stop_reason=reason,
                   **_metrics.snapshot())
    order = [i.name for i in problem.spec.instructions]
    return PartialSynthesisResult(
        problem_name=problem.name,
        mode=mode,
        completed=[solved[name] for name in order if name in solved],
        pending=[name for name in order if name not in solved],
        reason=reason,
        elapsed=time.monotonic() - started,
        stats=dict(stats),
        faults=list(faults),
    )


def _degrade(partial, fault, on_timeout):
    """Apply the degradation contract: return the partial or raise with it."""
    if on_timeout == "partial":
        return partial
    if on_timeout != "raise":
        raise ValueError(f"unknown on_timeout mode {on_timeout!r}")
    if isinstance(fault, SynthesisTimeout):
        fault.partial = partial
        raise fault
    if isinstance(fault, BudgetExhausted):
        raise SynthesisTimeout(str(fault), reason=fault.reason,
                               partial=partial) from fault
    fault.partial = partial
    raise fault


def splice_control(sketch, control_stmts):
    """Insert generated control assignments into the sketch.

    The assignments are placed at the earliest program point where all the
    signals they read are defined, which must precede the first use of any
    hole.  Hole declarations are dropped (the assignments define the same
    names as ordinary wires); the result is validated.
    """
    hole_names = {hole.name for hole in sketch.holes}
    defined_targets = {stmt.target for stmt in control_stmts
                       if isinstance(stmt, oy.Assign)}
    needed = set()
    for stmt in control_stmts:
        needed |= stmt_uses(stmt)
    needed -= defined_targets
    needed -= hole_names

    # Signals readable before any statement runs.
    ready = set()
    for decl in sketch.decls:
        if isinstance(decl, (oy.InputDecl, oy.RegisterDecl)):
            ready.add(decl.name)
    register_names = {reg.name for reg in sketch.registers}

    insert_at = 0 if needed <= ready else None
    first_hole_use = None
    for index, stmt in enumerate(sketch.stmts):
        if first_hole_use is None and (stmt_uses(stmt) & hole_names):
            first_hole_use = index
        if isinstance(stmt, oy.Assign) and stmt.target not in register_names:
            ready.add(stmt.target)
        if insert_at is None and needed <= ready:
            insert_at = index + 1
    if insert_at is None:
        missing = needed - ready
        raise SynthesisError(
            f"generated control reads signals never defined in the sketch: "
            f"{sorted(missing)}"
        )
    if first_hole_use is not None and insert_at > first_hole_use:
        raise SynthesisError(
            "generated control logic depends on signals defined after the "
            "first hole use; reorder the sketch so decode precedes control "
            "consumption"
        )
    new_stmts = (
        sketch.stmts[:insert_at]
        + tuple(control_stmts)
        + sketch.stmts[insert_at:]
    )
    kept_decls = tuple(
        decl for decl in sketch.decls if not isinstance(decl, oy.HoleDecl)
    )
    completed = oy.Design(sketch.name, kept_decls, new_stmts)
    check_design(completed)
    return completed
