"""The synthesis driver: Figure 4's dotted box.

``synthesize`` runs either strategy, applies the control union, splices the
generated control logic back into the sketch at a dataflow-legal position,
and returns a ``SynthesisResult`` whose ``completed_design`` is a hole-free
Oyster design.
"""

from __future__ import annotations

import time

from repro.oyster import ast as oy
from repro.oyster.analysis import expr_vars, stmt_uses
from repro.oyster.typecheck import check_design
from repro.synthesis.independence import check_instruction_independence
from repro.synthesis.monolithic import synthesize_monolithic_solutions
from repro.synthesis.per_instruction import synthesize_instruction
from repro.synthesis.result import (
    SynthesisError,
    SynthesisResult,
    SynthesisTimeout,
)
from repro.synthesis.union import control_union

__all__ = ["synthesize", "splice_control"]


def synthesize(problem, mode="per_instruction", timeout=None,
               max_iterations=256, check_independence=True,
               progress=None, partial_eval=True):
    """Run control logic synthesis.

    Parameters
    ----------
    mode:
        ``"per_instruction"`` (the Section 3.3.1 optimization, default) or
        ``"monolithic"`` (Equation (1), the Table 1 † configuration).
    timeout:
        Overall wall-clock budget in seconds; ``SynthesisTimeout`` is raised
        when exceeded (this is how the paper's Timeout row reproduces).
    check_independence:
        Verify the instruction-independence property before trusting the
        per-instruction strategy.
    progress:
        Optional callback ``progress(instruction_name, solution)``.
    """
    started = time.monotonic()
    deadline = None if timeout is None else started + timeout
    stats = {"mode": mode}

    if mode == "per_instruction":
        if check_independence:
            stats["independence_notes"] = check_instruction_independence(
                problem
            )
        solutions = []
        for index, instruction in enumerate(problem.spec.instructions):
            remaining = _remaining(deadline)
            solution = synthesize_instruction(
                problem, instruction, index, timeout=remaining,
                max_iterations=max_iterations, partial_eval=partial_eval,
            )
            solutions.append(solution)
            if progress is not None:
                progress(instruction.name, solution)
    elif mode == "monolithic":
        solutions, cegis_stats = synthesize_monolithic_solutions(
            problem, timeout=_remaining(deadline),
            max_iterations=max_iterations,
        )
        stats["cegis"] = cegis_stats.as_dict()
    else:
        raise ValueError(f"unknown synthesis mode {mode!r}")

    hole_exprs, control_stmts = control_union(problem, solutions)
    completed = splice_control(problem.sketch, control_stmts)
    return SynthesisResult(
        problem_name=problem.name,
        mode=mode,
        hole_exprs=hole_exprs,
        control_stmts=control_stmts,
        completed_design=completed,
        per_instruction=solutions,
        elapsed=time.monotonic() - started,
        stats=stats,
    )


def _remaining(deadline):
    if deadline is None:
        return None
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        raise SynthesisTimeout("synthesis wall-clock budget exhausted")
    return remaining


def splice_control(sketch, control_stmts):
    """Insert generated control assignments into the sketch.

    The assignments are placed at the earliest program point where all the
    signals they read are defined, which must precede the first use of any
    hole.  Hole declarations are dropped (the assignments define the same
    names as ordinary wires); the result is validated.
    """
    hole_names = {hole.name for hole in sketch.holes}
    defined_targets = {stmt.target for stmt in control_stmts
                       if isinstance(stmt, oy.Assign)}
    needed = set()
    for stmt in control_stmts:
        needed |= stmt_uses(stmt)
    needed -= defined_targets
    needed -= hole_names

    # Signals readable before any statement runs.
    ready = set()
    for decl in sketch.decls:
        if isinstance(decl, (oy.InputDecl, oy.RegisterDecl)):
            ready.add(decl.name)
    register_names = {reg.name for reg in sketch.registers}

    insert_at = 0 if needed <= ready else None
    first_hole_use = None
    for index, stmt in enumerate(sketch.stmts):
        if first_hole_use is None and (stmt_uses(stmt) & hole_names):
            first_hole_use = index
        if isinstance(stmt, oy.Assign) and stmt.target not in register_names:
            ready.add(stmt.target)
        if insert_at is None and needed <= ready:
            insert_at = index + 1
    if insert_at is None:
        missing = needed - ready
        raise SynthesisError(
            f"generated control reads signals never defined in the sketch: "
            f"{sorted(missing)}"
        )
    if first_hole_use is not None and insert_at > first_hole_use:
        raise SynthesisError(
            "generated control logic depends on signals defined after the "
            "first hole use; reorder the sketch so decode precedes control "
            "consumption"
        )
    new_stmts = (
        sketch.stmts[:insert_at]
        + tuple(control_stmts)
        + sketch.stmts[insert_at:]
    )
    kept_decls = tuple(
        decl for decl in sketch.decls if not isinstance(decl, oy.HoleDecl)
    )
    completed = oy.Design(sketch.name, kept_decls, new_stmts)
    check_design(completed)
    return completed
