"""``python -m repro.tools.oyster_tool`` — inspect and convert Oyster files.

Subcommands:

* ``check <file>``    parse + typecheck, print the signal widths;
* ``print <file>``    parse and pretty-print canonically;
* ``loc <file>``      the sketch-size metric (lines of Oyster);
* ``verilog <file>``  emit Verilog (design must be hole-free);
* ``gates <file>``    lower to gates and print netlist statistics;
* ``sim <file>``      run N cycles with zero inputs (or --random) and print
  the register/output trace — a smoke-run for hole-free designs.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.netlist import netlist_stats, optimize, synthesize_netlist
from repro.oyster import Simulator, check_design, parse_design, print_design
from repro.oyster.printer import design_loc
from repro.oyster.verilog import to_verilog

__all__ = ["main"]


def _load(path):
    with open(path) as handle:
        return parse_design(handle.read())


def main(argv=None):
    parser = argparse.ArgumentParser(prog="oyster_tool",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("check", "print", "loc", "verilog", "gates"):
        command = sub.add_parser(name)
        command.add_argument("file")
        if name == "gates":
            command.add_argument("--optimize", action="store_true")
    sim = sub.add_parser("sim")
    sim.add_argument("file")
    sim.add_argument("--cycles", type=int, default=10)
    sim.add_argument("--random", action="store_true")
    sim.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args(argv)

    design = _load(arguments.file)
    if arguments.command == "check":
        widths = check_design(design)
        print(f"{design.name}: OK ({len(widths)} signals)")
        for name in sorted(widths):
            print(f"  {name}: {widths[name]}")
    elif arguments.command == "print":
        sys.stdout.write(print_design(design))
    elif arguments.command == "loc":
        print(design_loc(design))
    elif arguments.command == "verilog":
        sys.stdout.write(to_verilog(design))
    elif arguments.command == "gates":
        netlist = synthesize_netlist(design)
        if arguments.optimize:
            netlist = optimize(netlist)
        stats = netlist_stats(netlist)
        print(f"{design.name}: {stats['total']} gates "
              f"({stats['logic_gates']} logic + {stats['flops']} flops)")
        for kind, count in sorted(stats["by_kind"].items()):
            print(f"  {kind}: {count}")
    elif arguments.command == "sim":
        rng = random.Random(arguments.seed)
        simulator = Simulator(design)
        for cycle in range(arguments.cycles):
            inputs = {
                decl.name: (rng.randrange(1 << decl.width)
                            if arguments.random else 0)
                for decl in design.inputs
            }
            outputs = simulator.step(inputs)
            state = {**simulator.registers, **outputs}
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(state.items())
            )
            print(f"cycle {cycle}: {rendered}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
