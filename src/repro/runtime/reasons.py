"""Canonical taxonomy of UNKNOWN-verdict reasons.

Every path that gives up without a SAT/UNSAT answer — the in-process CDCL
core's cancellation checkpoints, the isolated worker pool's watchdog and
crash classifier, the subprocess DIMACS backend's output parser, the
budget layer, and fault injection — tags its verdict with a *reason*
string.  Historically each layer minted its own spellings, so downstream
consumers (the verifier's unknown-verdict mapping, retry policies, obs
reports) had to pattern-match variants of the same fact.  This module is
the single source of truth: the canonical vocabulary, the alias table
mapping legacy spellings onto it, and :func:`normalize_reason`, which
every producer funnels through.

The taxonomy, grouped by who stopped the query:

========================  ===================================================
reason                    meaning
========================  ===================================================
``deadline``              a wall-clock cap expired (budget, per-call timeout,
                          or the worker watchdog's deadline kill)
``conflicts``             a conflict cap was hit (retry-with-escalation helps)
``memory``                a memory cap tripped at a cooperative checkpoint
``iterations``            a CEGIS/loop iteration cap was hit
``injected``              a :class:`repro.runtime.FaultInjector` forced it
``worker-crashed``        an isolated worker died for no classified cause
``worker-oom``            a worker breached its memory rlimit
``worker-cpu``            a worker breached its CPU rlimit
``heartbeat-lost``        the watchdog reaped a silent (hung) worker
``interrupted``           SIGINT teardown killed the query mid-flight
``backend-error``         an external solver produced garbage or crashed
``backend-missing``       no usable external solver binary was found
``circuit-breaker``       the pool refused the query (internal; the facade
                          converts this into an in-process fallback)
``malformed-model``       a SAT verdict carried an out-of-width assignment
``cancelled``             a portfolio race winner made this member's answer
                          moot (internal; never surfaces as a verdict)
``disagreement``          portfolio members returned contradictory verdicts
                          (carried by :class:`SoundnessViolation`)
``checkpoint``            a mid-run durability snapshot (not a stop; the
                          reason on periodic engine checkpoint partials)
``drained``               a graceful shutdown stopped the run at a clean
                          checkpoint boundary (resumable by construction)
``journal-fault``         the service's write-ahead journal could not make
                          a record durable (carried by ``JournalFault``)
``poisoned``              a service job crashed its runner too many times
                          and was marked failed-permanent
``unspecified``           the producer gave no reason (should be rare)
========================  ===================================================

This module is deliberately a leaf: it imports nothing, so any layer —
``repro.runtime``, ``repro.smt``, worker children — can use it without
layering concerns.
"""

from __future__ import annotations

__all__ = [
    "BUDGET_REASONS",
    "WORKER_REASONS",
    "BACKEND_REASONS",
    "PORTFOLIO_REASONS",
    "SERVICE_REASONS",
    "CANONICAL_REASONS",
    "RETRYABLE_REASONS",
    "normalize_reason",
    "is_canonical",
]

#: Caps enforced by ``repro.runtime.Budget`` / the CDCL checkpoints.
BUDGET_REASONS = frozenset({"deadline", "conflicts", "memory", "iterations"})

#: Classified deaths of isolated solver workers.
WORKER_REASONS = frozenset({
    "worker-crashed", "worker-oom", "worker-cpu",
    "heartbeat-lost", "interrupted",
})

#: Failures of pluggable solver backends themselves.
BACKEND_REASONS = frozenset({
    "backend-error", "backend-missing", "circuit-breaker",
})

#: Portfolio-race outcomes (internal bookkeeping, never a final verdict).
PORTFOLIO_REASONS = frozenset({"cancelled", "disagreement"})

#: Lifecycle outcomes of the long-lived synthesis service.
SERVICE_REASONS = frozenset({
    "checkpoint", "drained", "journal-fault", "poisoned",
})

#: The full canonical vocabulary.
CANONICAL_REASONS = (
    BUDGET_REASONS | WORKER_REASONS | BACKEND_REASONS | PORTFOLIO_REASONS
    | SERVICE_REASONS
    | frozenset({"injected", "malformed-model", "unspecified"})
)

#: Reasons where a retry (escalated caps, reseeded decisions, respawned
#: worker) can plausibly produce a verdict.  Deadline/memory exhaustion
#: and interrupt teardown are deliberately absent: retrying cannot create
#: more wall clock, more RAM, or un-press Ctrl-C.
RETRYABLE_REASONS = frozenset({
    "conflicts", "injected", "worker-crashed", "worker-oom",
    "heartbeat-lost", "backend-error",
})

#: Legacy and third-party spellings mapped onto the canonical vocabulary.
_ALIASES = {
    "": "unspecified",
    "none": "unspecified",
    "unknown": "unspecified",
    "timeout": "deadline",
    "time": "deadline",
    "wall": "deadline",
    "wall-clock": "deadline",
    "budget-exhausted": "deadline",
    "conflict": "conflicts",
    "conflict-limit": "conflicts",
    "max-conflicts": "conflicts",
    "mem": "memory",
    "oom": "memory",
    "rss": "memory",
    "iteration-limit": "iterations",
    "fault-injected": "injected",
    "watchdog": "heartbeat-lost",
    "hung": "heartbeat-lost",
    "hang": "heartbeat-lost",
    "sigint": "interrupted",
    "keyboard-interrupt": "interrupted",
    "worker-killed": "heartbeat-lost",
    "crashed": "worker-crashed",
    "crash": "worker-crashed",
    "garbage": "backend-error",
    "parse-error": "backend-error",
    "malformed-output": "backend-error",
    "solver-missing": "backend-missing",
    "no-solver": "backend-missing",
    "breaker": "circuit-breaker",
    "fallback": "circuit-breaker",
    "bad-model": "malformed-model",
    "canceled": "cancelled",
    "race-lost": "cancelled",
    "disagree": "disagreement",
    "verdict-conflict": "disagreement",
    "drain": "drained",
    "draining": "drained",
    "journal": "journal-fault",
    "poison": "poisoned",
    "poison-job": "poisoned",
}


def normalize_reason(reason):
    """Map ``reason`` (any producer's spelling) to its canonical form.

    Canonical strings pass through untouched; known aliases are rewritten;
    ``None``/empty become ``"unspecified"``.  A genuinely novel string is
    preserved as-is (lower-cased, ``_`` → ``-``) rather than erased —
    losing information would be worse than an extra vocabulary entry —
    but tests assert the hot paths only ever emit canonical reasons.
    """
    if reason is None:
        return "unspecified"
    text = str(reason).strip().lower().replace("_", "-")
    if text in CANONICAL_REASONS:
        return text
    return _ALIASES.get(text, text or "unspecified")


def is_canonical(reason):
    """Whether ``reason`` is a member of the canonical vocabulary."""
    return reason in CANONICAL_REASONS
