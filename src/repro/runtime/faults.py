"""Deterministic fault injection at the solver facade.

Production resilience claims ("a timeout mid-CEGIS degrades to a partial
result") are only testable if faults can be provoked *on demand and
reproducibly*.  A :class:`FaultInjector` holds a plan of faults keyed on
the facade's global check/model ordinals — the N-th ``Solver.check`` call
process-wide, regardless of which solver instance makes it — so a test can
say "the 3rd query returns UNKNOWN" and hit, say, the guess side of CEGIS
iteration 2 every single run.

Supported faults:

* ``inject_unknown(at_check=n)`` — the n-th check returns UNKNOWN
  (reason ``"injected"``), as if a conflict cap had been hit;
* ``inject_deadline(at_check=n)`` — the n-th check returns UNKNOWN with
  reason ``"deadline"``, as if the wall clock had expired mid-solve;
* ``inject_malformed_model(at_model=n)`` — the n-th model extraction is
  corrupted with deterministic out-of-width garbage, as if the backend
  were buggy.

Installation is process-global (the facade consults
:func:`active_injector`) and strictly scoped via the context manager, so a
test can never leak faults into the next one.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

__all__ = ["FaultInjector", "active_injector", "install", "clear"]

_ACTIVE = None


def active_injector():
    """The installed :class:`FaultInjector`, or ``None``."""
    return _ACTIVE


def install(injector):
    global _ACTIVE
    _ACTIVE = injector


def clear():
    global _ACTIVE
    _ACTIVE = None


class FaultInjector:
    """A deterministic plan of solver faults, installable process-wide."""

    def __init__(self, seed=0):
        self.seed = seed
        self.check_count = 0
        self.model_count = 0
        self._unknown_at = {}    # ordinal -> reason
        self._malformed_at = set()
        self.fired = []          # (kind, ordinal) log for assertions

    # -- plan construction ----------------------------------------------

    def inject_unknown(self, at_check, reason="injected"):
        """The ``at_check``-th facade check returns UNKNOWN(``reason``)."""
        for ordinal in self._ordinals(at_check):
            self._unknown_at[ordinal] = reason
        return self

    def inject_deadline(self, at_check):
        """The ``at_check``-th facade check times out (UNKNOWN/deadline)."""
        return self.inject_unknown(at_check, reason="deadline")

    def inject_malformed_model(self, at_model):
        """The ``at_model``-th model extraction is corrupted."""
        self._malformed_at.update(self._ordinals(at_model))
        return self

    @staticmethod
    def _ordinals(spec):
        return spec if isinstance(spec, (list, tuple, set)) else (spec,)

    # -- facade hooks -----------------------------------------------------

    def on_check(self):
        """Called by ``Solver.check``; returns an UNKNOWN reason or None."""
        self.check_count += 1
        reason = self._unknown_at.get(self.check_count)
        if reason is not None:
            self.fired.append(("unknown:" + reason, self.check_count))
        return reason

    def on_model(self, values):
        """Called by ``Solver.model`` with the assignment dict; may corrupt."""
        self.model_count += 1
        if self.model_count not in self._malformed_at:
            return values
        self.fired.append(("malformed_model", self.model_count))
        rng = random.Random(self.seed * 1_000_003 + self.model_count)
        corrupted = {}
        for name in sorted(values):
            # Out-of-width garbage: exceeds any width the blaster produced.
            corrupted[name] = (1 << 70) | rng.getrandbits(16)
        return corrupted

    # -- installation ------------------------------------------------------

    @contextmanager
    def installed(self):
        """Install for the duration of a ``with`` block (re-entrant safe)."""
        previous = active_injector()
        install(self)
        try:
            yield self
        finally:
            install(previous)
