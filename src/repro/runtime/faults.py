"""Deterministic fault injection at the solver facade.

Production resilience claims ("a timeout mid-CEGIS degrades to a partial
result") are only testable if faults can be provoked *on demand and
reproducibly*.  A :class:`FaultInjector` holds a plan of faults keyed on
the facade's global check/model ordinals — the N-th ``Solver.check`` call
process-wide, regardless of which solver instance makes it — so a test can
say "the 3rd query returns UNKNOWN" and hit, say, the guess side of CEGIS
iteration 2 every single run.

Supported faults:

* ``inject_unknown(at_check=n)`` — the n-th check returns UNKNOWN
  (reason ``"injected"``), as if a conflict cap had been hit;
* ``inject_deadline(at_check=n)`` — the n-th check returns UNKNOWN with
  reason ``"deadline"``, as if the wall clock had expired mid-solve;
* ``inject_malformed_model(at_model=n)`` — the n-th model extraction is
  corrupted with deterministic out-of-width garbage, as if the backend
  were buggy;
* ``inject_worker_crash(at_request=n)`` / ``inject_worker_hang(...)`` /
  ``inject_worker_oom(...)`` — the n-th request submitted to a
  :class:`repro.runtime.workers.SolverWorkerPool` carries a directive the
  worker obeys: die with a crash exit code mid-check, go silent (stop
  heartbeating) so the watchdog must reap it, or allocate until the
  memory rlimit breaches.  ``at_request="all"`` makes the fault
  persistent (every request), which is how the circuit-breaker fallback
  is exercised.
* ``inject_journal_fault(at_append=n)`` — the n-th append to the
  synthesis service's write-ahead journal fails as if the underlying
  write/fsync had errored; the service must surface a typed
  ``JournalFault`` and never acknowledge the un-logged job.
  ``at_append="all"`` fails every append.

Installation is process-global (the facade consults
:func:`active_injector`) and strictly scoped via the context manager, so a
test can never leak faults into the next one.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS

__all__ = ["FaultInjector", "active_injector", "install", "clear"]

_ACTIVE = None


def active_injector():
    """The installed :class:`FaultInjector`, or ``None``."""
    return _ACTIVE


def install(injector):
    global _ACTIVE
    _ACTIVE = injector


def clear():
    global _ACTIVE
    _ACTIVE = None


class FaultInjector:
    """A deterministic plan of solver faults, installable process-wide."""

    def __init__(self, seed=0):
        self.seed = seed
        self.check_count = 0
        self.model_count = 0
        self.request_count = 0   # worker-pool submissions, process-wide
        self.journal_count = 0   # service journal appends, process-wide
        self._unknown_at = {}    # ordinal -> reason
        self._malformed_at = set()
        self._worker_at = {}     # ordinal -> directive
        self._worker_always = None  # persistent directive ("all" plans)
        self._journal_at = set()
        self._journal_always = False
        self.fired = []          # (kind, ordinal) log for assertions

    # -- plan construction ----------------------------------------------

    def inject_unknown(self, at_check, reason="injected"):
        """The ``at_check``-th facade check returns UNKNOWN(``reason``)."""
        for ordinal in self._ordinals(at_check):
            self._unknown_at[ordinal] = reason
        return self

    def inject_deadline(self, at_check):
        """The ``at_check``-th facade check times out (UNKNOWN/deadline)."""
        return self.inject_unknown(at_check, reason="deadline")

    def inject_malformed_model(self, at_model):
        """The ``at_model``-th model extraction is corrupted."""
        self._malformed_at.update(self._ordinals(at_model))
        return self

    def inject_worker_crash(self, at_request):
        """The ``at_request``-th pool submission dies with a crash exit."""
        return self._plan_worker(at_request, "crash")

    def inject_worker_hang(self, at_request):
        """The ``at_request``-th pool submission goes silent (no
        heartbeats); the watchdog must hard-kill it."""
        return self._plan_worker(at_request, "hang")

    def inject_worker_oom(self, at_request):
        """The ``at_request``-th pool submission allocates until its
        memory rlimit breaches."""
        return self._plan_worker(at_request, "oom")

    def inject_journal_fault(self, at_append):
        """The ``at_append``-th service-journal append fails durably:
        the record must be treated as never written."""
        if at_append == "all":
            self._journal_always = True
            return self
        self._journal_at.update(self._ordinals(at_append))
        return self

    def _plan_worker(self, at_request, directive):
        if at_request == "all":
            self._worker_always = directive
            return self
        for ordinal in self._ordinals(at_request):
            self._worker_at[ordinal] = directive
        return self

    @staticmethod
    def _ordinals(spec):
        return spec if isinstance(spec, (list, tuple, set)) else (spec,)

    # -- facade hooks -----------------------------------------------------

    def _record(self, kind, ordinal):
        """Append to the fired log and surface the fault as obs telemetry,
        so a traced run shows exactly which faults actually landed."""
        self.fired.append((kind, ordinal))
        _METRICS.inc("faults.injected")
        _obs.event("fault.injected", kind=kind, ordinal=ordinal,
                   seed=self.seed)

    def on_check(self):
        """Called by ``Solver.check``; returns an UNKNOWN reason or None."""
        self.check_count += 1
        reason = self._unknown_at.get(self.check_count)
        if reason is not None:
            self._record("unknown:" + reason, self.check_count)
        return reason

    def on_worker_request(self):
        """Called by the worker pool per submission; returns a directive
        (``"crash"``/``"hang"``/``"oom"``) or ``None``.

        Thread-safe enough for concurrent dispatch: ordinals are taken
        under the GIL and each planned ordinal fires exactly once.
        """
        self.request_count += 1
        directive = self._worker_at.pop(self.request_count, None)
        if directive is None:
            directive = self._worker_always
        if directive is not None:
            self._record("worker:" + directive, self.request_count)
        return directive

    def on_journal_append(self):
        """Called by the service journal per append; ``True`` = fail it.

        The journal consults this *before* writing anything, modelling a
        write/fsync error: a failed append leaves no bytes behind, so the
        job it carried was never durable and must not be acknowledged.
        """
        self.journal_count += 1
        if self._journal_always or self.journal_count in self._journal_at:
            self._record("journal", self.journal_count)
            return True
        return False

    def on_model(self, values):
        """Called by ``Solver.model`` with the assignment dict; may corrupt."""
        self.model_count += 1
        if self.model_count not in self._malformed_at:
            return values
        self._record("malformed_model", self.model_count)
        rng = random.Random(self.seed * 1_000_003 + self.model_count)
        corrupted = {}
        for name in sorted(values):
            # Out-of-width garbage: exceeds any width the blaster produced.
            corrupted[name] = (1 << 70) | rng.getrandbits(16)
        return corrupted

    # -- installation ------------------------------------------------------

    @contextmanager
    def installed(self):
        """Install for the duration of a ``with`` block (re-entrant safe).

        A traced run brackets the installation with ``fault.installed`` /
        ``fault.uninstalled`` events — the seed on entry and the full
        fired log on exit — so the injection plan that shaped a trace is
        recorded *in* the trace.
        """
        previous = active_injector()
        install(self)
        _obs.event("fault.installed", seed=self.seed,
                   planned_checks=len(self._unknown_at),
                   planned_models=len(self._malformed_at),
                   planned_workers=len(self._worker_at),
                   planned_journal=len(self._journal_at),
                   persistent_worker=self._worker_always or "",
                   persistent_journal=self._journal_always)
        try:
            yield self
        finally:
            install(previous)
            _obs.event("fault.uninstalled", seed=self.seed,
                       fired=[f"{kind}@{ordinal}"
                              for kind, ordinal in self.fired])
