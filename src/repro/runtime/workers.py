"""Isolated solver workers: subprocess sandbox, watchdog, classification.

:class:`SolverWorkerPool` executes solver checks in disposable child
processes so a pathological query cannot take the engine down with it: a
memory blow-up breaches the *worker's* rlimit, a wedged search is
hard-killed by the watchdog thread, and either way the parent keeps every
per-instruction solution it has already completed.

The wire format is DIMACS (``repro.smt.dimacs``): the parent bit-blasts
and Tseitin-encodes the query, ships the CNF plus the variable-bit header
over the worker's stdin, and decodes the returned assignment back into
term-level model values.  Exit status is classified into the
``repro.runtime`` fault taxonomy:

========================  =====================================  =========
observation               classified as                          retryable
========================  =====================================  =========
clean ``unknown`` result  ``Unknown(reason)`` verdict            per reason
exit ``EXIT_OOM``         ``WorkerCrashed("worker-oom")``        yes
death by ``SIGXCPU``      ``WorkerCrashed("worker-cpu")``        no
any other death           ``WorkerCrashed("worker-crashed")``    yes
watchdog: silent worker   ``WorkerKilled("heartbeat-lost")``     yes
watchdog: past deadline   ``WorkerKilled("deadline")``           no
SIGINT teardown           ``WorkerKilled("interrupted")``        no
========================  =====================================  =========

Retryable faults feed the existing :class:`repro.runtime.RetryPolicy`
(the retry lands on a freshly spawned worker); the pool additionally
keeps a per-query circuit breaker so a query that keeps killing workers
falls back to in-process solving instead of burning respawns forever.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from queue import Empty, Queue

from repro.obs import flight as _flight
from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.runtime import faults as _faults
from repro.runtime.errors import WorkerCrashed, WorkerKilled
from repro.runtime.retry import decorrelated_jitter
from repro.runtime._worker_proto import EXIT_OOM

__all__ = ["SolverWorkerPool", "WorkerOutcome"]


@dataclass
class WorkerOutcome:
    """A clean verdict from a worker check."""

    verdict: str            # "sat" | "unsat" | "unknown"
    reason: str = ""        # exhausted cap for "unknown"
    model: dict = None      # term-variable values for "sat"
    conflicts: int = 0      # conflicts the worker spent (budget charge)


class _WorkerHandle:
    """One live child process and its liveness bookkeeping."""

    def __init__(self, proc):
        self.proc = proc
        self.pid = proc.pid
        self.last_beat = time.monotonic()
        self.deadline = None      # absolute; None while idle or uncapped
        self.kill_reason = None   # set by the watchdog before SIGKILL
        self.requests = 0

    def send(self, payload):
        self.proc.stdin.write(json.dumps(payload) + "\n")
        self.proc.stdin.flush()

    def kill(self, reason):
        self.kill_reason = reason
        try:
            self.proc.kill()
        except OSError:
            pass

    def alive(self):
        return self.proc.poll() is None


class SolverWorkerPool:
    """A fixed-size pool of sandboxed solver worker processes.

    Parameters
    ----------
    size:
        Number of concurrently live workers (and the useful concurrency
        for the engine's per-instruction dispatch).
    mem_limit_mb / cpu_limit_s:
        ``resource.setrlimit`` caps applied inside each worker; 0/None
        disables a cap.
    heartbeat_interval:
        Seconds between worker heartbeats; the watchdog hard-kills a
        worker that has been silent for ``watchdog_grace`` intervals.
    watchdog_grace:
        Multiplier on the heartbeat interval before a silent worker is
        declared hung (default 2: reaped within 2x the interval).
    fallback_after:
        Circuit breaker: consecutive worker faults on the *same query*
        before ``should_fallback`` tells the facade to solve in-process.
    respawn_jitter / respawn_jitter_cap:
        Decorrelated-jitter delay (seconds) before replacing a crashed
        worker, so a burst of crashes (portfolio chaos, a bad query
        killing every member) does not respawn the whole pool in
        lockstep.  ``respawn_jitter=0`` disables the delay.  The jitter
        sequence is deterministic given ``seed``.
    """

    def __init__(self, size=2, mem_limit_mb=None, cpu_limit_s=None,
                 heartbeat_interval=0.25, watchdog_grace=2.0,
                 fallback_after=2, python=None,
                 respawn_jitter=0.01, respawn_jitter_cap=0.25, seed=2024):
        self.size = max(1, int(size))
        self.mem_limit_mb = mem_limit_mb
        self.cpu_limit_s = cpu_limit_s
        self.heartbeat_interval = heartbeat_interval
        self.watchdog_grace = watchdog_grace
        self.fallback_after = fallback_after
        self.respawn_jitter = respawn_jitter
        self.respawn_jitter_cap = respawn_jitter_cap
        self._respawn_rng = random.Random(seed)
        self._respawn_previous = 0.0
        self._sleep = time.sleep
        self._python = python or sys.executable
        self._lock = threading.Lock()
        self._idle = Queue()
        self._inflight = set()
        self._failures = {}       # query key -> consecutive worker faults
        #: crash-storm detection: this many worker deaths inside the
        #: window dumps the flight recorder (at most once per window).
        self.storm_threshold = 3
        self.storm_window = 10.0
        self._crash_times = []
        self._last_storm_dump = None
        self._closed = False
        self.spawned_pids = []
        self.stats = {
            "spawned": 0, "reaped": 0, "requests": 0, "crashes": 0,
            "watchdog_kills": 0, "fallbacks": 0,
        }
        for _ in range(self.size):
            self._idle.put(self._spawn())
        self._watchdog_stop = threading.Event()
        self._watchdog = threading.Thread(
            target=self._watch, name="solver-pool-watchdog", daemon=True
        )
        self._watchdog.start()

    # -- lifecycle -------------------------------------------------------

    def _spawn(self):
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        argv = [self._python, "-m", "repro.runtime.worker_main",
                "--heartbeat-interval", str(self.heartbeat_interval)]
        if self.mem_limit_mb:
            argv += ["--mem-limit-mb", str(self.mem_limit_mb)]
        if self.cpu_limit_s:
            argv += ["--cpu-limit-s", str(self.cpu_limit_s)]
        proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=env, text=True, bufsize=1,
        )
        handle = _WorkerHandle(proc)
        ready = proc.stdout.readline()
        if not ready:
            proc.kill()
            proc.wait()
            raise RuntimeError(
                f"solver worker failed to boot (exit {proc.returncode})"
            )
        with self._lock:
            self.stats["spawned"] += 1
            self.spawned_pids.append(handle.pid)
        _METRICS.inc("worker.spawned")
        return handle

    def _reap(self, handle):
        """Collect a dead worker and replace it with a fresh one.

        The replacement is delayed by a decorrelated-jitter pause so
        simultaneous crashes (a query that kills every worker it lands
        on, portfolio chaos lanes) refill the pool staggered instead of
        in lockstep.
        """
        try:
            handle.proc.stdin.close()
        except OSError:
            pass
        code = handle.proc.wait()
        with self._lock:
            self.stats["reaped"] += 1
            closed = self._closed
        _METRICS.inc("worker.reaped")
        if not closed:
            pause = self._respawn_pause()
            if pause > 0.0:
                self._sleep(pause)
            self._idle.put(self._spawn())
        return code

    def _respawn_pause(self):
        """Next deterministic respawn delay (0.0 when jitter is off)."""
        if not self.respawn_jitter:
            return 0.0
        with self._lock:
            pause = decorrelated_jitter(
                self._respawn_rng, self.respawn_jitter,
                self.respawn_jitter_cap, self._respawn_previous,
            )
            self._respawn_previous = pause
        return pause

    def shutdown(self, timeout=5.0):
        """Stop every worker; returns the orphan-free accounting.

        Idle workers get a polite shutdown request; anything still alive
        after ``timeout`` (including in-flight workers) is killed.  The
        returned dict's ``orphans`` entry counts workers that survived
        even SIGKILL — it must be 0, and tests assert exactly that.
        """
        with self._lock:
            self._closed = True
        self._watchdog_stop.set()
        handles = []
        while True:
            try:
                handles.append(self._idle.get_nowait())
            except Empty:
                break
        with self._lock:
            handles.extend(self._inflight)
            self._inflight.clear()
        for handle in handles:
            if handle.alive():
                try:
                    handle.send({"shutdown": True})
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                handle.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.kill("shutdown")
                try:
                    handle.proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    pass
            with self._lock:
                if handle.proc.returncode is not None:
                    self.stats["reaped"] += 1
                    _METRICS.inc("worker.reaped")
        if self._watchdog.is_alive():
            self._watchdog.join(timeout=1.0)
        orphans = [h.pid for h in handles if h.alive()]
        accounting = dict(self.stats)
        accounting["orphans"] = len(orphans)
        return accounting

    def terminate_inflight(self):
        """Hard-kill every in-flight worker (SIGINT teardown path).

        Blocked submitter threads observe EOF promptly and classify the
        death; idle workers stay available for the next run.
        """
        with self._lock:
            inflight = list(self._inflight)
        for handle in inflight:
            handle.kill("interrupted")

    def live_pids(self):
        """PIDs of ever-spawned workers that are still alive."""
        alive = []
        for pid in self.spawned_pids:
            try:
                os.kill(pid, 0)
            except (OSError, ProcessLookupError):
                continue
            alive.append(pid)
        return alive

    # -- watchdog --------------------------------------------------------

    def _watch(self):
        """Hard-kill in-flight workers that go silent or overshoot.

        Scans several times per heartbeat interval so a hung worker is
        reaped within ``watchdog_grace`` intervals of its last beat, per
        the containment bound the tests assert.
        """
        period = max(0.01, self.heartbeat_interval / 4.0)
        while not self._watchdog_stop.wait(period):
            now = time.monotonic()
            with self._lock:
                inflight = list(self._inflight)
            for handle in inflight:
                if not handle.alive():
                    continue
                silent_for = now - handle.last_beat
                if silent_for > self.watchdog_grace * self.heartbeat_interval:
                    with self._lock:
                        self.stats["watchdog_kills"] += 1
                    _METRICS.inc("worker.watchdog_kills")
                    _METRICS.inc("worker.kills.heartbeat_lost")
                    # The watchdog thread owns no span; the kill is still
                    # worth a (parentless) mark on the timeline.
                    _obs.event("worker.killed", span_parent=None,
                               reason="heartbeat-lost", pid=handle.pid,
                               silent_for=silent_for)
                    handle.kill("heartbeat-lost")
                elif (handle.deadline is not None
                        and now > handle.deadline + self.heartbeat_interval):
                    with self._lock:
                        self.stats["watchdog_kills"] += 1
                    _METRICS.inc("worker.watchdog_kills")
                    _METRICS.inc("worker.kills.deadline")
                    _obs.event("worker.killed", span_parent=None,
                               reason="deadline", pid=handle.pid)
                    handle.kill("deadline")

    # -- circuit breaker -------------------------------------------------

    def should_fallback(self, key):
        """Whether ``key``'s query has crashed enough workers that the
        facade should solve it in-process instead."""
        with self._lock:
            return self._failures.get(key, 0) >= self.fallback_after

    def note_fallback(self, key):
        with self._lock:
            self.stats["fallbacks"] += 1
        _METRICS.inc("worker.fallbacks")
        _obs.event("worker.fallback",
                   failures=self._failures.get(key, 0))

    def _note_failure(self, key):
        if key is None:
            return
        with self._lock:
            self._failures[key] = self._failures.get(key, 0) + 1

    def _note_success(self, key):
        if key is None:
            return
        with self._lock:
            self._failures.pop(key, None)

    # -- the check itself ------------------------------------------------

    def check(self, dimacs, max_conflicts=None, timeout=None, seed=None,
              key=None):
        """Run one check on a worker; returns a :class:`WorkerOutcome`.

        Raises :class:`WorkerCrashed` / :class:`WorkerKilled` on worker
        death, with the circuit-breaker failure count for ``key``
        updated either way.
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        with self._lock:
            self.stats["requests"] += 1
        _METRICS.inc("worker.requests")
        directive = None
        injector = _faults.active_injector()
        if injector is not None:
            directive = injector.on_worker_request()
        handle = self._idle.get()
        request_id = handle.requests = handle.requests + 1
        now = time.monotonic()
        handle.last_beat = now
        handle.deadline = None if timeout is None else now + timeout
        handle.kill_reason = None
        with self._lock:
            self._inflight.add(handle)
        worker_died = False
        try:
            outcome = self._run_request(handle, {
                "id": request_id,
                "dimacs": dimacs,
                "max_conflicts": max_conflicts,
                "timeout": timeout,
                "seed": seed,
                "fault": directive,
                # Workers import no obs code; this flag asks the child to
                # ship its own provenance back over the wire protocol.
                # The flight recorder wants the same provenance even with
                # JSONL tracing off.
                "trace": (_obs.active_tracer() is not None
                          or _obs.active_flight() is not None),
                # Cross-process trace context: the child echoes this back
                # with its provenance so the stitched per-job trace
                # provably crossed the process boundary.
                "trace_ctx": _obs.current_trace_id(),
            })
        except (WorkerCrashed, WorkerKilled):
            # The handle must never return to the idle queue, even if the
            # process has not finished dying yet (the OOM reporter writes
            # its crash line *before* _exit, so alive() can race true).
            worker_died = True
            self._note_failure(key)
            raise
        finally:
            with self._lock:
                self._inflight.discard(handle)
            handle.deadline = None
            if worker_died or not handle.alive():
                self._reap(handle)
            else:
                self._idle.put(handle)
        self._note_success(key)
        return outcome

    def _run_request(self, handle, request):
        try:
            handle.send(request)
        except (OSError, ValueError):
            raise self._classify_death(handle)
        while True:
            line = handle.proc.stdout.readline()
            if not line:
                raise self._classify_death(handle)
            try:
                message = json.loads(line)
            except ValueError:
                continue
            if "hb" in message:
                handle.last_beat = time.monotonic()
                continue
            if message.get("id") != request["id"]:
                continue  # stale line from a previous request
            if "obs" in message:
                # Worker-side provenance riding the wire protocol: emit it
                # on the parent's tracer, parented to the submitter
                # thread's current span (the owning solver check).
                _obs.event("worker.check", pid=handle.pid,
                           **message["obs"])
                continue
            if message.get("crashed") == "oom":
                # The worker reported the breach before dying; the EOF
                # and EXIT_OOM follow, but this is the authoritative word.
                with self._lock:
                    self.stats["crashes"] += 1
                _METRICS.inc("worker.crashes")
                _METRICS.inc("worker.crashes.oom")
                self._note_crash_storm()
                raise WorkerCrashed(
                    "worker memory rlimit breached mid-check",
                    reason="worker-oom", exit_code=EXIT_OOM,
                )
            return WorkerOutcome(
                verdict=message["verdict"],
                reason=message.get("reason") or "",
                model=message.get("model"),
                conflicts=int(message.get("conflicts") or 0),
            )

    def _note_crash_storm(self):
        """Dump the flight recorder when worker deaths cluster.

        A single crash is routine (the taxonomy absorbs it); several
        inside :attr:`storm_window` seconds mean something systemic — a
        query killing every worker it touches, an environment change —
        and the ring holds the evidence.  At most one dump per window.
        """
        now = time.monotonic()
        storm = False
        with self._lock:
            self._crash_times.append(now)
            self._crash_times = [
                t for t in self._crash_times
                if now - t <= self.storm_window
            ]
            if len(self._crash_times) >= self.storm_threshold and (
                    self._last_storm_dump is None
                    or now - self._last_storm_dump >= self.storm_window):
                self._last_storm_dump = now
                storm = True
        if storm:
            _METRICS.inc("worker.crash_storms")
            _flight.flight_dump("worker-crash-storm")

    def _classify_death(self, handle):
        """Map a dead worker's exit status into the fault taxonomy."""
        try:
            code = handle.proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            handle.kill("unresponsive")
            code = handle.proc.wait()
        with self._lock:
            self.stats["crashes"] += 1
        _METRICS.inc("worker.crashes")
        self._note_crash_storm()
        _obs.event("worker.death", pid=handle.pid, exit_code=code,
                   kill_reason=handle.kill_reason or "")
        if handle.kill_reason == "heartbeat-lost":
            return WorkerKilled(
                f"watchdog killed worker {handle.pid} (heartbeat lost)",
                reason="heartbeat-lost", exit_code=code,
            )
        if handle.kill_reason == "interrupted":
            # SIGINT teardown: deliberately NOT retryable — the engine is
            # unwinding, so retry machinery must not respawn the check.
            return WorkerKilled(
                f"worker {handle.pid} terminated by interrupt",
                reason="interrupted", exit_code=code,
            )
        if handle.kill_reason == "deadline":
            return WorkerKilled(
                f"watchdog killed worker {handle.pid} past its deadline",
                reason="deadline", exit_code=code,
            )
        if code == EXIT_OOM:
            return WorkerCrashed(
                f"worker {handle.pid} breached its memory rlimit",
                reason="worker-oom", exit_code=code,
            )
        if code == -signal.SIGXCPU:
            return WorkerCrashed(
                f"worker {handle.pid} breached its CPU rlimit",
                reason="worker-cpu", exit_code=code,
            )
        return WorkerCrashed(
            f"worker {handle.pid} died with exit status {code}",
            reason="worker-crashed", exit_code=code,
        )
