"""Retry-with-escalation for UNKNOWN solver verdicts.

A conflict-capped SAT call that comes back UNKNOWN is often solvable by the
classic restart recipe: a larger conflict budget and a reseeded decision
order (fresh VSIDS activities and saved phases).  :class:`RetryPolicy`
encodes that escalation — geometric conflict-budget growth, deterministic
per-attempt seeds, and exponential backoff with a hard ceiling so a
retrying service cannot busy-spin — and :func:`run_with_retry` applies it
around any callable that raises :class:`SolverUnknown`.

Deadline- and memory-exhaustion are *not* retried: more attempts cannot
create more wall clock, and memory pressure only gets worse.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.runtime.errors import BudgetExhausted, SolverUnknown

__all__ = ["RetryPolicy", "Attempt", "run_with_retry",
           "decorrelated_jitter"]


def decorrelated_jitter(rng, base, cap, previous):
    """One step of AWS-style decorrelated-jitter backoff.

    ``sleep = min(cap, uniform(base, previous * 3))`` — grows roughly
    exponentially like the classic doubling schedule but decorrelates
    concurrent retriers (portfolio probes, pool respawns) so they do not
    synchronize into thundering herds.  Deterministic given a seeded
    ``rng``, which is what the tests pin.
    """
    if cap <= 0.0 or base <= 0.0:
        return 0.0
    low = min(base, cap)
    high = max(low, min(previous * 3.0, cap) if previous > 0.0 else low)
    return min(cap, rng.uniform(low, high))

#: UNKNOWN reasons where escalation can plausibly help.  Worker deaths
#: (crash, OOM rlimit, missed heartbeats) are retryable because the retry
#: lands on a *fresh* process; deadline kills and CPU-cap breaches are not
#: (more attempts cannot create more wall clock or CPU).
_RETRYABLE_REASONS = frozenset(
    {"conflicts", "unknown", "injected", "malformed-model", "unspecified",
     "worker-crashed", "worker-oom", "heartbeat-lost"}
)


@dataclass(frozen=True)
class Attempt:
    """Parameters for one attempt of an escalating retry sequence."""

    index: int            # 0-based attempt number
    max_conflicts: object  # int cap for this attempt, or None (uncapped)
    seed: object          # decision-order seed, or None (keep current order)
    backoff: float        # seconds to sleep before this attempt


@dataclass(frozen=True)
class RetryPolicy:
    """Escalation schedule for UNKNOWN verdicts.

    ``initial_conflicts=None`` leaves the first attempt uncapped (whatever
    the caller's budget imposes); later attempts multiply the cap by
    ``escalation``.  ``reseed=True`` perturbs the solver's decision order
    with ``seed + index`` before each retry, which is frequently what
    actually rescues a stuck search.

    ``jitter="decorrelated"`` (the default) replaces the bare doubling
    backoff with :func:`decorrelated_jitter` so concurrent retriers
    spread out; the sequence is still deterministic (driven by ``seed``).
    ``jitter="none"`` keeps the exact exponential schedule, for callers
    (and tests) that pin specific backoff values.
    """

    max_attempts: int = 3
    initial_conflicts: object = None  # int or None
    escalation: float = 4.0
    backoff: float = 0.05
    backoff_ceiling: float = 2.0
    reseed: bool = True
    seed: int = 2024
    jitter: str = "decorrelated"  # "decorrelated" | "none"

    def attempts(self):
        """Yield the :class:`Attempt` sequence this policy prescribes."""
        conflicts = self.initial_conflicts
        rng = random.Random(self.seed) if self.jitter == "decorrelated" \
            else None
        previous = 0.0
        for index in range(max(1, self.max_attempts)):
            if index == 0:
                pause = 0.0
            elif rng is not None:
                pause = decorrelated_jitter(
                    rng, self.backoff, self.backoff_ceiling, previous)
                previous = pause
            else:
                pause = min(self.backoff * (2.0 ** (index - 1)),
                            self.backoff_ceiling)
            yield Attempt(
                index=index,
                max_conflicts=None if conflicts is None else int(conflicts),
                seed=(self.seed + index) if (self.reseed and index) else None,
                backoff=pause,
            )
            if conflicts is not None:
                conflicts = max(conflicts + 1, conflicts * self.escalation)

    def should_retry(self, fault):
        """Whether ``fault`` (a RuntimeFault) is worth another attempt."""
        if isinstance(fault, BudgetExhausted):
            return False
        return (isinstance(fault, SolverUnknown)
                and fault.reason in _RETRYABLE_REASONS)


def run_with_retry(step, policy, budget=None, sleep=time.sleep):
    """Run ``step(attempt)`` under ``policy``; return its first result.

    ``step`` must raise :class:`SolverUnknown` to request escalation; any
    other exception (including :class:`BudgetExhausted`) propagates
    immediately.  The backoff sleep is clipped to the budget's remaining
    wall clock so retries never outlive the deadline.  After the last
    attempt the final fault propagates unchanged, annotated with the
    number of attempts made (``fault.attempts``).
    """
    if policy is None:
        policy = RetryPolicy(max_attempts=1)
    last_fault = None
    attempts_made = 0
    for attempt in policy.attempts():
        if attempt.backoff > 0.0:
            pause = attempt.backoff
            if budget is not None:
                remaining = budget.remaining_time()
                if remaining is not None:
                    pause = min(pause, remaining)
            if pause > 0.0:
                sleep(pause)
        if budget is not None:
            budget.check()
        attempts_made += 1
        try:
            return step(attempt)
        except SolverUnknown as fault:
            last_fault = fault
            if not policy.should_retry(fault):
                break
    last_fault.attempts = attempts_made
    raise last_fault
