"""Entry point of a sandboxed solver worker process.

Run as ``python -m repro.runtime.worker_main [--mem-limit-mb N]
[--cpu-limit-s N] [--heartbeat-interval F]``.  The parent
(:class:`repro.runtime.workers.SolverWorkerPool`) speaks a line protocol:

* parent → worker (stdin): one JSON request per line —
  ``{"id", "dimacs", "max_conflicts", "timeout", "seed", "fault"}``;
* worker → parent (stdout): ``{"ready": pid}`` once at boot,
  ``{"hb": id}`` heartbeats while a request is in flight, and a final
  ``{"id", "verdict", "reason", "model", "conflicts"}`` per request.

Sandboxing is applied before the first request: ``RLIMIT_DATA`` (heap)
caps memory so a bit-blasting or clause-database blow-up raises
``MemoryError`` *here* instead of OOM-killing the engine, and
``RLIMIT_CPU`` backstops runaway solving with a kernel SIGXCPU.  A
``MemoryError`` anywhere in the request loop reports ``crashed: oom``
and exits with :data:`EXIT_OOM` — the heap is not trustworthy afterwards,
so the pool respawns rather than reuses the process.

Fault directives (``"crash"``/``"hang"``/``"oom"``) come from the
parent-side :class:`repro.runtime.FaultInjector` plan and make the
containment claims testable: crash exits mid-check, hang goes silent so
the watchdog must reap the process, oom allocates until the rlimit
breaches.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

try:  # pragma: no cover - platform gate
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

from repro.runtime._worker_proto import EXIT_CRASH, EXIT_OOM

__all__ = ["main", "EXIT_CRASH", "EXIT_OOM"]

#: Injected OOM stops allocating past this many bytes even when no rlimit
#: is configured, so a mis-configured test cannot eat the whole machine.
_OOM_ALLOCATION_CEILING = 1 << 31


def _apply_rlimits(mem_limit_mb, cpu_limit_s):
    if _resource is None:
        return
    if mem_limit_mb:
        limit = int(mem_limit_mb) * 1024 * 1024
        # RLIMIT_DATA caps the heap (brk + private mmap on Linux >= 4.7)
        # without constraining the interpreter's shared mappings the way
        # RLIMIT_AS would; breaches surface as MemoryError.
        kind = getattr(_resource, "RLIMIT_DATA", _resource.RLIMIT_AS)
        try:
            _resource.setrlimit(kind, (limit, limit))
        except (ValueError, OSError):
            pass
    if cpu_limit_s:
        seconds = int(cpu_limit_s)
        try:
            _resource.setrlimit(_resource.RLIMIT_CPU, (seconds, seconds + 1))
        except (ValueError, OSError):
            pass


class _Heartbeat:
    """Emits ``{"hb": id}`` lines on an interval while a request runs.

    A thread (not a solver checkpoint) so heartbeats keep flowing during
    DIMACS parsing and clause loading, not just mid-search; the
    interpreter's switch interval guarantees it gets scheduled even while
    the main thread solves.  ``silence()`` is the injected-hang hook: the
    process stays alive but goes quiet, which is exactly the failure mode
    the parent watchdog exists to catch.
    """

    def __init__(self, write, interval):
        self._write = write
        self._interval = interval
        self._request_id = None
        self._silent = False
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while True:
            time.sleep(self._interval)
            with self._lock:
                request_id = None if self._silent else self._request_id
            if request_id is not None:
                self._write({"hb": request_id})

    def begin(self, request_id):
        with self._lock:
            self._request_id = request_id
            self._silent = False

    def end(self):
        with self._lock:
            self._request_id = None

    def silence(self):
        with self._lock:
            self._silent = True


def _inject_oom(mem_limit_mb):
    """Allocate until the rlimit breaches (or a hard ceiling is hit).

    The hoard is released before re-raising: the crash report itself
    needs a few allocations (json, pipe write), and a heap pinned at the
    rlimit would thrash long enough for the watchdog to misclassify the
    breach as a hang.
    """
    ceiling = _OOM_ALLOCATION_CEILING
    if mem_limit_mb:
        ceiling = min(ceiling, int(mem_limit_mb) * 1024 * 1024 * 4)
    hoard = []
    total = 0
    chunk = 16 * 1024 * 1024
    try:
        while total < ceiling:
            hoard.append(bytearray(chunk))
            total += chunk
    finally:
        hoard.clear()
    # No rlimit stopped us: simulate the breach so the parent still sees
    # a classified OOM instead of a successful check.
    raise MemoryError("injected oom (allocation ceiling reached)")


def _serve(request, write, heartbeat, mem_limit_mb):
    # Imported here, not at module top: the parent pool imports this
    # module for the exit-code constants, and the runtime layer must not
    # drag repro.smt in with it.
    from repro.smt.dimacs import from_dimacs, solve_dimacs

    request_id = request.get("id")
    fault = request.get("fault")
    heartbeat.begin(request_id)
    try:
        if fault == "crash":
            os._exit(EXIT_CRASH)
        if fault == "hang":
            heartbeat.silence()
            time.sleep(3600)
        if fault == "oom":
            _inject_oom(mem_limit_mb)
        started = time.monotonic()
        cnf = from_dimacs(request["dimacs"])
        timeout = request.get("timeout")
        deadline = None if timeout is None else time.monotonic() + timeout
        verdict, values, conflicts = solve_dimacs(
            cnf,
            max_conflicts=request.get("max_conflicts"),
            deadline=deadline,
            seed=request.get("seed"),
        )
        reason = None
        if verdict.startswith("unknown"):
            _, _, reason = verdict.partition(":")
            verdict = "unknown"
        heartbeat.end()
        if request.get("trace"):
            # Worker-side provenance rides the same line protocol; the
            # parent pool forwards it onto the installed tracer.  Plain
            # dicts only — this process deliberately imports no obs code.
            obs = {
                "verdict": verdict,
                "reason": reason or "",
                "conflicts": conflicts,
                "clauses": len(cnf.clauses),
                "vars": cnf.num_vars,
                "wall": time.monotonic() - started,
            }
            if request.get("trace_ctx"):
                # Echo the cross-process trace context: the parent's
                # re-emitted event then proves the id crossed the wire.
                obs["trace_ctx"] = request["trace_ctx"]
            write({
                "id": request_id,
                "obs": obs,
            })
        write({
            "id": request_id,
            "verdict": verdict,
            "reason": reason or None,
            "model": values if verdict == "sat" else None,
            "conflicts": conflicts,
        })
    except MemoryError:
        # The heap is suspect after a failed allocation: report with the
        # dedicated exit code and die so the pool respawns a clean process.
        try:
            write({"id": request_id, "crashed": "oom"})
        except Exception:
            pass
        os._exit(EXIT_OOM)


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.runtime.worker_main")
    parser.add_argument("--mem-limit-mb", type=int, default=0)
    parser.add_argument("--cpu-limit-s", type=int, default=0)
    parser.add_argument("--heartbeat-interval", type=float, default=0.25)
    args = parser.parse_args(argv)

    _apply_rlimits(args.mem_limit_mb, args.cpu_limit_s)

    stdout_lock = threading.Lock()

    def write(payload):
        with stdout_lock:
            sys.stdout.write(json.dumps(payload) + "\n")
            sys.stdout.flush()

    # Beat at twice the nominal rate: the parent watchdog declares a hang
    # after two silent intervals, and sleep-based beats drift under load,
    # so a 1:1 cadence would sit right on the kill threshold.
    heartbeat = _Heartbeat(write, args.heartbeat_interval / 2.0)
    write({"ready": os.getpid()})
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        request = json.loads(line)
        if request.get("shutdown"):
            break
        _serve(request, write, heartbeat, args.mem_limit_mb)
    return 0


if __name__ == "__main__":
    sys.exit(main())
