"""Constants shared by the worker child and the parent pool.

A separate module so ``repro.runtime.workers`` (parent side) never
imports ``repro.runtime.worker_main`` (the child's ``-m`` entry point) —
importing a ``runpy`` target from package ``__init__`` time triggers the
"found in sys.modules" RuntimeWarning in every spawned worker.
"""

#: Exit code for an injected crash (mid-check process death).
EXIT_CRASH = 70
#: Exit code for a memory-rlimit breach (caught ``MemoryError``).
EXIT_OOM = 71
