"""Cooperative resource budgets: wall clock, conflicts, memory.

A :class:`Budget` is threaded *down* through the synthesis stack — engine →
CEGIS → solver facade → CDCL core — and charged *up*: the SAT core polls it
at cancellation checkpoints (propagation, decision, conflict) and every
facade ``check`` charges the conflicts it consumed, so nested layers share
one honest account of how much resource is left.

Budgets nest: ``budget.child(timeout=5)`` returns a budget whose deadline
is the *minimum* of its own and every ancestor's, and whose conflict
charges propagate to the ancestors.  This is what lets the per-instruction
loop give each instruction a slice of the overall run budget without any
layer being able to overspend the whole.

All caps are optional; ``Budget()`` with no arguments never exhausts and
costs almost nothing to poll.
"""

from __future__ import annotations

import threading
import time

from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.runtime.errors import BudgetExhausted, ResourceExceeded

try:  # pragma: no cover - platform gate
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

__all__ = ["Budget"]


def _rss_bytes():
    """Current peak RSS in bytes (0 when unavailable)."""
    if _resource is None:
        return 0
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes; normalize heuristically.
    return rss * 1024 if rss < 1 << 40 else rss


class Budget:
    """A nestable wall-clock / conflict / memory budget.

    Parameters
    ----------
    timeout:
        Wall-clock cap in seconds for this budget (from creation time).
    max_conflicts:
        Cap on SAT conflicts charged via :meth:`charge_conflicts`.
    max_memory_mb:
        Cap on process peak RSS in megabytes, polled at checkpoints.
    clock:
        Monotonic clock, injectable for tests.
    """

    __slots__ = ("_clock", "started", "deadline", "max_conflicts",
                 "conflicts_used", "max_memory_bytes", "_parent",
                 "_reported", "_lock")

    def __init__(self, timeout=None, max_conflicts=None, max_memory_mb=None,
                 clock=time.monotonic, _parent=None):
        self._clock = clock
        self.started = clock()
        self.deadline = None if timeout is None else self.started + timeout
        if _parent is not None and _parent.deadline is not None:
            if self.deadline is None or _parent.deadline < self.deadline:
                self.deadline = _parent.deadline
        self.max_conflicts = max_conflicts
        self.conflicts_used = 0
        self.max_memory_bytes = (
            None if max_memory_mb is None else int(max_memory_mb * 1024 * 1024)
        )
        self._parent = _parent
        self._reported = False
        self._lock = threading.Lock()

    # -- construction ----------------------------------------------------

    def child(self, timeout=None, max_conflicts=None, max_memory_mb=None):
        """A nested budget never looser than this one.

        The child's deadline is clamped to the parent chain's; conflict
        charges to the child propagate upward.  A ``max_memory_mb`` of
        ``None`` inherits the parent's cap (peak RSS is process-global).
        """
        child = Budget(timeout=timeout, max_conflicts=max_conflicts,
                       max_memory_mb=max_memory_mb, clock=self._clock,
                       _parent=self)
        if child.max_memory_bytes is None:
            child.max_memory_bytes = self.max_memory_bytes
        return child

    # -- accounting ------------------------------------------------------

    def elapsed(self):
        return self._clock() - self.started

    def remaining_time(self):
        """Seconds left before the deadline, or ``None`` if uncapped."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def remaining_conflicts(self):
        """Conflicts left on the tightest cap in the chain, or ``None``."""
        remaining = None
        node = self
        while node is not None:
            if node.max_conflicts is not None:
                left = max(0, node.max_conflicts - node.conflicts_used)
                remaining = left if remaining is None else min(remaining, left)
            node = node._parent
        return remaining

    def charge_conflicts(self, count):
        """Record ``count`` conflicts against this budget and its ancestors.

        Called once per facade check on the leaf budget (the parent walk is
        internal), so the metrics counter sees each conflict exactly once.
        Thread-safe: concurrent runner threads charging children of a
        shared parent (the service's per-tenant budgets) must not lose
        updates to the ancestors' read-modify-write.
        """
        if count:
            _METRICS.inc("budget.conflicts_charged", count)
        node = self
        while node is not None:
            with node._lock:
                node.conflicts_used += count
            node = node._parent

    # -- exhaustion ------------------------------------------------------

    def memory_exceeded(self):
        if self.max_memory_bytes is None:
            return False
        return _rss_bytes() > self.max_memory_bytes

    def exhausted_reason(self):
        """The first exhausted cap (``"deadline"``/``"conflicts"``/
        ``"memory"``) or ``None`` while within budget."""
        if self.deadline is not None and self._clock() >= self.deadline:
            return "deadline"
        remaining = self.remaining_conflicts()
        if remaining is not None and remaining <= 0:
            return "conflicts"
        if self.memory_exceeded():
            return "memory"
        return None

    def check(self):
        """Raise :class:`BudgetExhausted` if any cap in the chain is hit."""
        reason = self.exhausted_reason()
        if reason is None:
            # Hot path: polled at the SAT core's cancellation checkpoints,
            # so the within-budget branch stays instrumentation-free.
            return
        if not self._reported:
            self._reported = True
            _METRICS.inc("budget.exhausted")
            _METRICS.inc(f"budget.exhausted.{reason}")
            _obs.event("budget.exhausted", reason=reason,
                       elapsed=self.elapsed(),
                       conflicts_used=self.conflicts_used)
        if reason == "memory":
            raise ResourceExceeded(
                f"memory cap of {self.max_memory_bytes // (1024 * 1024)} MB "
                "exceeded"
            )
        raise BudgetExhausted(reason=reason)

    def __repr__(self):
        caps = []
        if self.deadline is not None:
            caps.append(f"time={self.remaining_time():.3f}s")
        if self.max_conflicts is not None:
            caps.append(
                f"conflicts={self.conflicts_used}/{self.max_conflicts}"
            )
        if self.max_memory_bytes is not None:
            caps.append(f"mem<={self.max_memory_bytes >> 20}MB")
        return f"Budget({', '.join(caps) or 'unbounded'})"
