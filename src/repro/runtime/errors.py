"""Typed failure taxonomy for resource-bounded solving.

The synthesis stack distinguishes *why* a query came back without an
answer, because the recovery differs:

``BudgetExhausted(reason="deadline")``
    wall-clock budget spent — retrying is pointless, degrade to a partial
    result and report honestly (the paper's Timeout rows);
``BudgetExhausted(reason="conflicts")`` / ``SolverUnknown(reason="conflicts")``
    a conflict cap was hit — a restart with a larger cap and a reseeded
    decision order often succeeds (see ``repro.runtime.retry``);
``ResourceExceeded``
    a memory cap tripped — escalation must *not* retry with a bigger
    budget on the same box;
``MalformedModel``
    the solver claimed SAT but produced an assignment violating variable
    widths — a solver bug (or an injected fault); treated as UNKNOWN so a
    bad backend cannot silently corrupt synthesized control logic.

All of these derive from ``RuntimeFault`` so orchestration layers can
catch the whole family with one handler while still branching on
``.reason``.
"""

from __future__ import annotations

__all__ = [
    "RuntimeFault",
    "BudgetExhausted",
    "ResourceExceeded",
    "SolverUnknown",
    "MalformedModel",
]


class RuntimeFault(Exception):
    """Base class for resource and solver faults raised by the runtime."""

    reason = "unspecified"


class BudgetExhausted(RuntimeFault):
    """A :class:`repro.runtime.Budget` cap was hit.

    ``reason`` is machine-readable: ``"deadline"``, ``"conflicts"``,
    ``"memory"`` or ``"iterations"``.
    """

    def __init__(self, message="", reason="deadline"):
        super().__init__(message or f"budget exhausted ({reason})")
        self.reason = reason


class ResourceExceeded(BudgetExhausted):
    """A process-level resource cap (memory) was exceeded."""

    def __init__(self, message="", reason="memory"):
        super().__init__(message or f"resource cap exceeded ({reason})",
                         reason=reason)


class SolverUnknown(RuntimeFault):
    """The solver gave up without a verdict and retries did not help."""

    def __init__(self, message="", reason="unknown"):
        super().__init__(message or f"solver returned unknown ({reason})")
        self.reason = reason


class MalformedModel(SolverUnknown):
    """A SAT verdict came with an assignment that violates the encoding."""

    def __init__(self, message=""):
        super().__init__(message or "solver produced a malformed model",
                         reason="malformed-model")
