"""Typed failure taxonomy for resource-bounded solving.

The synthesis stack distinguishes *why* a query came back without an
answer, because the recovery differs:

``BudgetExhausted(reason="deadline")``
    wall-clock budget spent — retrying is pointless, degrade to a partial
    result and report honestly (the paper's Timeout rows);
``BudgetExhausted(reason="conflicts")`` / ``SolverUnknown(reason="conflicts")``
    a conflict cap was hit — a restart with a larger cap and a reseeded
    decision order often succeeds (see ``repro.runtime.retry``);
``ResourceExceeded``
    a memory cap tripped — escalation must *not* retry with a bigger
    budget on the same box;
``MalformedModel``
    the solver claimed SAT but produced an assignment violating variable
    widths — a solver bug (or an injected fault); treated as UNKNOWN so a
    bad backend cannot silently corrupt synthesized control logic.
``WorkerCrashed`` / ``WorkerKilled``
    an isolated solver worker process died (crash, rlimit breach) or was
    hard-killed by the pool's watchdog (missed heartbeats, deadline
    overshoot); the query itself is unharmed, so most of these are
    retryable on a respawned worker.
``SoundnessViolation``
    two solver backends returned contradictory SAT/UNSAT verdicts on the
    same query — one of them is *wrong*, and synthesis must abort rather
    than emit control logic derived from an unverified verdict.  This is
    deliberately **not** a ``SolverUnknown``: retry machinery must never
    absorb it, and the engine's degradation paths must never convert it
    into a partial result.

All of these derive from ``RuntimeFault`` so orchestration layers can
catch the whole family with one handler while still branching on
``.reason``.
"""

from __future__ import annotations

__all__ = [
    "RuntimeFault",
    "BudgetExhausted",
    "ResourceExceeded",
    "SolverUnknown",
    "MalformedModel",
    "WorkerFault",
    "WorkerCrashed",
    "WorkerKilled",
    "SoundnessViolation",
]


class RuntimeFault(Exception):
    """Base class for resource and solver faults raised by the runtime."""

    reason = "unspecified"


class BudgetExhausted(RuntimeFault):
    """A :class:`repro.runtime.Budget` cap was hit.

    ``reason`` is machine-readable: ``"deadline"``, ``"conflicts"``,
    ``"memory"`` or ``"iterations"``.
    """

    def __init__(self, message="", reason="deadline"):
        super().__init__(message or f"budget exhausted ({reason})")
        self.reason = reason


class ResourceExceeded(BudgetExhausted):
    """A process-level resource cap (memory) was exceeded."""

    def __init__(self, message="", reason="memory"):
        super().__init__(message or f"resource cap exceeded ({reason})",
                         reason=reason)


class SolverUnknown(RuntimeFault):
    """The solver gave up without a verdict and retries did not help."""

    def __init__(self, message="", reason="unknown"):
        super().__init__(message or f"solver returned unknown ({reason})")
        self.reason = reason


class MalformedModel(SolverUnknown):
    """A SAT verdict came with an assignment that violates the encoding."""

    def __init__(self, message=""):
        super().__init__(message or "solver produced a malformed model",
                         reason="malformed-model")


class WorkerFault(SolverUnknown):
    """An isolated solver worker failed before producing a verdict.

    Subclasses carry machine-readable reasons; ``exit_code`` is the
    worker's raw exit status (negative for signal deaths) when known.
    """

    def __init__(self, message="", reason="worker-fault", exit_code=None):
        super().__init__(message or f"solver worker failed ({reason})",
                         reason=reason)
        self.exit_code = exit_code


class WorkerCrashed(WorkerFault):
    """A worker process died on its own: crash, OOM rlimit, CPU rlimit.

    ``reason`` is ``"worker-crashed"`` (unexplained death),
    ``"worker-oom"`` (memory rlimit breach) or ``"worker-cpu"`` (CPU
    rlimit breach).  Crashes and OOMs are retryable on a fresh worker;
    CPU-cap breaches are not (a respawn would burn the same CPU again).
    """

    def __init__(self, message="", reason="worker-crashed", exit_code=None):
        super().__init__(message or f"solver worker crashed ({reason})",
                         reason=reason, exit_code=exit_code)


class WorkerKilled(WorkerFault):
    """The pool's watchdog hard-killed a worker.

    ``reason`` is ``"heartbeat-lost"`` (the worker went silent — a hang;
    retryable on a respawn) or ``"deadline"`` (the query's wall-clock
    budget expired with the worker still solving; retrying cannot create
    more wall clock).
    """

    def __init__(self, message="", reason="heartbeat-lost", exit_code=None):
        super().__init__(message or f"solver worker killed ({reason})",
                         reason=reason, exit_code=exit_code)


class SoundnessViolation(RuntimeFault):
    """Solver backends returned contradictory SAT/UNSAT verdicts.

    Raised by the portfolio backend's disagreement sentinel after a
    re-check on the trusted member fails to exonerate anyone.  Carries
    the full evidence: ``verdicts`` maps each member name to the verdict
    it claimed, ``trusted`` names the member whose re-check was used as
    the tiebreaker (``None`` if none was available).

    Subclasses ``RuntimeFault`` directly — **not** ``SolverUnknown`` —
    so retry policies (which only catch ``SolverUnknown``) re-raise it
    immediately and it propagates loudly out of ``synthesize``.
    """

    reason = "disagreement"

    def __init__(self, message="", verdicts=None, trusted=None):
        super().__init__(
            message or "solver backends disagree on a SAT/UNSAT verdict"
        )
        self.verdicts = dict(verdicts or {})
        self.trusted = trusted
