"""Entry point of a persistent incremental solver worker process.

Run as ``python -m repro.runtime.incremental_worker [--mem-limit-mb N]
[--cpu-limit-s N] [--heartbeat-interval F]``.  Where
``repro.runtime.worker_main`` hosts *stateless* checks (one DIMACS query
per request, any worker can serve any query), this worker keeps ONE
``SatSolver`` alive for its whole life: the parent
(:class:`repro.smt.backends.incremental_subprocess
.IncrementalSubprocessBackend`) streams clauses into it once and then
issues many assumption solves against the accumulated state — learned
clauses, variable activities and the kept assumption trail all survive
across checks, out of process.

The wire protocol is an IPASIR-flavoured *text* line protocol (JSON per
clause would dominate the encode cost at clause-stream rates).  Literals
are the solver core's internal encoding (``2*var`` positive,
``2*var + 1`` negated) — the parent mirrors the core's numbering, so no
translation happens on either side.

* parent -> worker (stdin)::

    alloc <num_vars>             allocate variables up to this count
    a <lit> ... 0                add one clause
    assume <lit> ... 0           stage assumptions for the next solve
    solve <max_conflicts|-> <timeout_s|->
                                 solve under the staged assumptions
    reseed <seed>                perturb decision order (retries)
    ctx <token|->                set (or with ``-`` clear) the trace
                                 context echoed on every result line
    fault crash|hang|oom         fault injection (containment tests)
    quit                         exit cleanly

* worker -> parent (stdout)::

    ready <pid>                  once, after rlimits are applied
    hb                           heartbeats while a solve is in flight
    v <+var|-var> ... 0          assignment lines (before a sat result)
    r sat|unsat|unknown <reason|-> <conflicts> [key=value ...]
                                 one result per solve; key=value pairs
                                 are the per-solve internals deltas,
                                 plus ``ctx=<token>`` when a trace
                                 context is set

Sandboxing matches the stateless worker: the same ``RLIMIT_DATA`` /
``RLIMIT_CPU`` caps (:func:`repro.runtime.worker_main._apply_rlimits`)
are applied before the first request, the same heartbeat thread
(:class:`repro.runtime.worker_main._Heartbeat`) keeps the parent's
watchdog fed during long solves, and a ``MemoryError`` anywhere exits
with :data:`EXIT_OOM` so the parent respawns (and replays its mirrored
clause list) rather than trust a post-OOM heap.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

from repro.runtime._worker_proto import EXIT_CRASH, EXIT_OOM
from repro.runtime.worker_main import _apply_rlimits, _Heartbeat, _inject_oom

__all__ = ["main", "EXIT_CRASH", "EXIT_OOM"]


def _run_loop(write, heartbeat, mem_limit_mb):
    # Imported here, not at module top: the parent backend imports this
    # module for its name only, and the runtime layer must not drag
    # repro.smt in with it.
    from repro.smt.sat.solver import SatSolver

    solver = SatSolver()
    assumptions = []
    trace_ctx = None

    def ensure_vars(count):
        while solver.num_vars < count:
            solver.new_var()

    for line in sys.stdin:
        tokens = line.split()
        if not tokens:
            continue
        cmd = tokens[0]
        if cmd == "a":
            lits = [int(tok) for tok in tokens[1:-1]]
            if lits:
                ensure_vars(max(lit >> 1 for lit in lits))
            solver.add_clause(lits)
        elif cmd == "assume":
            assumptions = [int(tok) for tok in tokens[1:-1]]
            if assumptions:
                ensure_vars(max(lit >> 1 for lit in assumptions))
        elif cmd == "alloc":
            ensure_vars(int(tokens[1]))
        elif cmd == "solve":
            max_conflicts = None if tokens[1] == "-" else int(tokens[1])
            timeout = None if tokens[2] == "-" else float(tokens[2])
            deadline = None if timeout is None else time.monotonic() + timeout
            heartbeat.begin("solve")
            before = solver.conflicts
            internals_before = solver.internals()
            verdict = solver.solve(
                assumptions=assumptions,
                max_conflicts=max_conflicts,
                deadline=deadline,
            )
            heartbeat.end()
            assumptions = []
            spent = solver.conflicts - before
            internals = solver.internals()
            deltas = " ".join(
                f"{key}={value - internals_before[key]}"
                for key, value in internals.items()
            )
            # Echo the cross-process trace context on every result: the
            # parent attributes this solve to the submitting job's trace.
            suffix = f" ctx={trace_ctx}" if trace_ctx else ""
            if verdict is None:
                reason = solver.stop_reason or "-"
                write(f"r unknown {reason} {spent} {deltas}{suffix}")
            elif verdict:
                model = solver.model()
                write("v " + " ".join(
                    str(var if value else -var)
                    for var, value in model.items()
                ) + " 0")
                write(f"r sat - {spent} {deltas}{suffix}")
            else:
                write(f"r unsat - {spent} {deltas}{suffix}")
        elif cmd == "ctx":
            trace_ctx = None if tokens[1] == "-" else tokens[1]
        elif cmd == "reseed":
            solver.reseed(int(tokens[1]))
        elif cmd == "fault":
            kind = tokens[1]
            if kind == "crash":
                os._exit(EXIT_CRASH)
            elif kind == "hang":
                heartbeat.begin("hang")
                heartbeat.silence()
                time.sleep(3600)
            elif kind == "oom":
                _inject_oom(mem_limit_mb)
        elif cmd == "quit":
            break


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.runtime.incremental_worker")
    parser.add_argument("--mem-limit-mb", type=int, default=0)
    parser.add_argument("--cpu-limit-s", type=int, default=0)
    parser.add_argument("--heartbeat-interval", type=float, default=0.25)
    args = parser.parse_args(argv)

    _apply_rlimits(args.mem_limit_mb, args.cpu_limit_s)

    stdout_lock = threading.Lock()

    def write(text):
        with stdout_lock:
            sys.stdout.write(text + "\n")
            sys.stdout.flush()

    # The heartbeat thread emits dict payloads; render them as protocol
    # lines.  Beating at half the nominal interval keeps the cadence
    # safely under the parent's two-silent-intervals kill threshold.
    heartbeat = _Heartbeat(lambda payload: write("hb"),
                           args.heartbeat_interval / 2.0)
    write(f"ready {os.getpid()}")
    try:
        _run_loop(write, heartbeat, args.mem_limit_mb)
    except MemoryError:
        # The heap is suspect: report nothing more and die with the
        # dedicated exit code so the parent respawns and replays.
        os._exit(EXIT_OOM)
    return 0


if __name__ == "__main__":
    sys.exit(main())
