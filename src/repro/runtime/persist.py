"""Crash-atomic file persistence: tempfile + fsync + ``os.replace``.

Every durable artifact in the stack — resume handles, the service job
store's snapshots, result-cache entries — must survive a ``kill -9`` at
any instant with either the *old* contents or the *new* contents, never a
torn mixture.  POSIX gives exactly one primitive with that guarantee:
write a sibling tempfile, ``fsync`` it, ``os.replace`` it over the
destination, and ``fsync`` the directory so the rename itself is durable.

These helpers are deliberately tiny and dependency-free so any layer
(``runtime``, ``synthesis``, ``service``) can use them without layering
concerns.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_text", "atomic_write_json", "fsync_dir"]


def fsync_dir(path):
    """Flush a directory entry so a completed rename survives power loss.

    Best-effort: some filesystems (and all of Windows) refuse to open
    directories; the rename is still atomic there, just not yet durable.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform gate
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform gate
        pass
    finally:
        os.close(fd)


def atomic_write_text(path, text, fsync=True):
    """Atomically replace ``path`` with ``text``.

    The tempfile is created in the destination's directory (``os.replace``
    must not cross filesystems) and removed on any failure, so a crashed
    writer leaves the old file intact and at worst one stray
    ``.tmp-*`` sibling.  ``fsync=False`` skips the flushes for callers
    that only need atomicity, not durability (tests, scratch state).
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=".tmp-" + os.path.basename(path) + "-", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(directory)
    return path


def atomic_write_json(path, obj, fsync=True):
    """Atomically replace ``path`` with ``obj`` serialized as JSON."""
    return atomic_write_text(
        path, json.dumps(obj, indent=2, sort_keys=True) + "\n", fsync=fsync
    )
