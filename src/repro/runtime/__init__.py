"""Resilient synthesis runtime: budgets, retries, fault injection.

This package is the resource-control spine under the synthesis stack:

* :class:`Budget` — nestable wall-clock / conflict / memory caps, threaded
  cooperatively from the engine down into the CDCL core's cancellation
  checkpoints;
* the typed failure taxonomy (:class:`BudgetExhausted`,
  :class:`SolverUnknown`, :class:`ResourceExceeded`,
  :class:`MalformedModel`) that replaces opaque UNKNOWNs with
  machine-actionable reasons;
* :class:`RetryPolicy` — restart-with-escalation (bigger conflict budget,
  reseeded decision order, capped exponential backoff) for UNKNOWNs that
  retrying can actually fix;
* :class:`FaultInjector` — deterministic UNKNOWN / timeout / malformed-model
  injection at the solver facade, so degradation paths are testable.

It deliberately imports nothing from ``repro.smt`` or ``repro.synthesis``;
those layers import *it*.
"""

from repro.runtime.budget import Budget
from repro.runtime.errors import (
    BudgetExhausted,
    MalformedModel,
    ResourceExceeded,
    RuntimeFault,
    SolverUnknown,
)
from repro.runtime.faults import FaultInjector, active_injector
from repro.runtime.retry import Attempt, RetryPolicy, run_with_retry

__all__ = [
    "Budget",
    "RuntimeFault",
    "BudgetExhausted",
    "ResourceExceeded",
    "SolverUnknown",
    "MalformedModel",
    "RetryPolicy",
    "Attempt",
    "run_with_retry",
    "FaultInjector",
    "active_injector",
]
