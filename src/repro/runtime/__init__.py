"""Resilient synthesis runtime: budgets, retries, fault injection.

This package is the resource-control spine under the synthesis stack:

* :class:`Budget` — nestable wall-clock / conflict / memory caps, threaded
  cooperatively from the engine down into the CDCL core's cancellation
  checkpoints;
* the typed failure taxonomy (:class:`BudgetExhausted`,
  :class:`SolverUnknown`, :class:`ResourceExceeded`,
  :class:`MalformedModel`) that replaces opaque UNKNOWNs with
  machine-actionable reasons;
* :class:`RetryPolicy` — restart-with-escalation (bigger conflict budget,
  reseeded decision order, capped exponential backoff) for UNKNOWNs that
  retrying can actually fix;
* :class:`FaultInjector` — deterministic UNKNOWN / timeout / malformed-model
  / worker-crash / worker-hang / worker-OOM injection, so degradation and
  containment paths are testable;
* :class:`SolverWorkerPool` — sandboxed subprocess workers (rlimit caps,
  heartbeats, watchdog hard-kill) with crash classification into the
  taxonomy (:class:`WorkerCrashed`, :class:`WorkerKilled`) and a
  per-query circuit breaker that falls back to in-process solving;
* ``reasons`` — the canonical machine-readable reason taxonomy
  (:func:`normalize_reason`) every UNKNOWN verdict, worker outcome and
  backend result is mapped through.

It deliberately imports nothing from ``repro.smt`` or ``repro.synthesis``;
those layers import *it*.  (The worker *child* process speaks the DIMACS
wire format and therefore imports ``repro.smt`` — but only inside the
child's request loop, never at parent import time.)
"""

from repro.runtime.budget import Budget
from repro.runtime.errors import (
    BudgetExhausted,
    MalformedModel,
    ResourceExceeded,
    RuntimeFault,
    SolverUnknown,
    SoundnessViolation,
    WorkerCrashed,
    WorkerFault,
    WorkerKilled,
)
from repro.runtime.faults import FaultInjector, active_injector
from repro.runtime.reasons import (
    CANONICAL_REASONS,
    RETRYABLE_REASONS,
    is_canonical,
    normalize_reason,
)
from repro.runtime.retry import (
    Attempt,
    RetryPolicy,
    decorrelated_jitter,
    run_with_retry,
)
from repro.runtime.workers import SolverWorkerPool, WorkerOutcome

__all__ = [
    "CANONICAL_REASONS",
    "RETRYABLE_REASONS",
    "is_canonical",
    "normalize_reason",
    "Budget",
    "RuntimeFault",
    "BudgetExhausted",
    "ResourceExceeded",
    "SolverUnknown",
    "MalformedModel",
    "WorkerFault",
    "WorkerCrashed",
    "WorkerKilled",
    "SoundnessViolation",
    "RetryPolicy",
    "Attempt",
    "run_with_retry",
    "decorrelated_jitter",
    "FaultInjector",
    "active_injector",
    "SolverWorkerPool",
    "WorkerOutcome",
]
