"""Synthesis observability: span tracing, metrics, query provenance.

The legs of the layer, each usable alone:

* :mod:`repro.obs.trace` — a process-global :class:`Tracer` writing
  append-only JSONL events with nestable spans and a no-op fast path when
  disabled (the default).  Instrumentation stays in the hot path
  permanently; the *cost* of tracing is opt-in.  The same module owns
  the cross-process trace context (:func:`new_trace_id` /
  :class:`trace_context`) stamping every event of a service job with one
  correlation id across daemon, runner and worker processes.
* :mod:`repro.obs.metrics` — :data:`METRICS`, the unified registry
  absorbing the encode counters, worker-pool health, budget consumption
  and trace-cache hit rates into one snapshot/delta API, plus
  fixed-boundary latency histograms (:meth:`MetricsRegistry.observe`).
* :mod:`repro.obs.flight` — the crash flight recorder: a bounded ring of
  recent events, live even when JSONL tracing is off, dumped atomically
  on poison jobs, soundness violations, crash storms and unhandled
  daemon errors.
* :mod:`repro.obs.export` — Prometheus text exposition of a metrics
  snapshot (the daemon's ``telemetry`` op).
* :mod:`repro.obs.schema` / :mod:`repro.obs.report` — the ``obs/v1``
  event contract and the post-hoc analysis behind
  ``scripts/trace_report.py``.

Layering: this package imports nothing from the rest of ``repro`` at
module scope (``metrics.snapshot`` reads ``repro.smt.counters`` lazily),
so every layer — ``runtime``, ``smt``, ``synthesis``, ``eval`` — may
instrument itself without creating a cycle.
"""

from repro.obs.export import render_prometheus
from repro.obs.flight import (
    FlightRecorder,
    active_flight,
    clear_flight,
    flight_dump,
    flight_record,
    install_flight,
)
from repro.obs.metrics import METRICS, Histogram, MetricsRegistry
from repro.obs.schema import SchemaError, validate_event, validate_trace
from repro.obs.trace import (
    Tracer,
    active_tracer,
    clear,
    current_span_id,
    current_trace_id,
    event,
    install,
    installed,
    new_trace_id,
    span,
    trace_context,
)

__all__ = [
    "Tracer",
    "active_tracer",
    "install",
    "clear",
    "installed",
    "span",
    "event",
    "current_span_id",
    "new_trace_id",
    "current_trace_id",
    "trace_context",
    "METRICS",
    "Histogram",
    "MetricsRegistry",
    "FlightRecorder",
    "install_flight",
    "clear_flight",
    "active_flight",
    "flight_record",
    "flight_dump",
    "render_prometheus",
    "SchemaError",
    "validate_event",
    "validate_trace",
]
