"""Synthesis observability: span tracing, metrics, query provenance.

The three legs of the layer, each usable alone:

* :mod:`repro.obs.trace` — a process-global :class:`Tracer` writing
  append-only JSONL events with nestable spans and a no-op fast path when
  disabled (the default).  Instrumentation stays in the hot path
  permanently; the *cost* of tracing is opt-in.
* :mod:`repro.obs.metrics` — :data:`METRICS`, the unified registry
  absorbing the encode counters, worker-pool health, budget consumption
  and trace-cache hit rates into one snapshot/delta API.
* :mod:`repro.obs.schema` / :mod:`repro.obs.report` — the ``obs/v1``
  event contract and the post-hoc analysis behind
  ``scripts/trace_report.py``.

Layering: this package imports nothing from the rest of ``repro`` at
module scope (``metrics.snapshot`` reads ``repro.smt.counters`` lazily),
so every layer — ``runtime``, ``smt``, ``synthesis``, ``eval`` — may
instrument itself without creating a cycle.
"""

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.schema import SchemaError, validate_event, validate_trace
from repro.obs.trace import (
    Tracer,
    active_tracer,
    clear,
    current_span_id,
    event,
    install,
    installed,
    span,
)

__all__ = [
    "Tracer",
    "active_tracer",
    "install",
    "clear",
    "installed",
    "span",
    "event",
    "current_span_id",
    "METRICS",
    "MetricsRegistry",
    "SchemaError",
    "validate_event",
    "validate_trace",
]
