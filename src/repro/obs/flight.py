"""The crash flight recorder: a bounded ring of recent obs events.

Always-on JSONL tracing is too expensive for a production daemon, but a
post-mortem with *zero* recent events is useless.  The flight recorder
is the middle ground: a bounded in-memory ring that captures the most
recent spans and events whether or not a :class:`~repro.obs.trace.Tracer`
is installed, and is dumped to disk — atomically, as a schema-valid
``obs/v1`` JSONL file — only when something goes wrong:

* a poison-job verdict (the supervisor gave up on a crash-looping job);
* a :class:`~repro.runtime.faults.SoundnessViolation` (portfolio members
  disagreed on a verdict);
* a worker crash storm (several subprocess worker deaths in a short
  window);
* an unhandled exception escaping the daemon's request handler.

The ring is lock-free in the practical sense: entries are appended to a
``collections.deque(maxlen=...)`` — a single atomic operation under
CPython — so recording never takes a lock and never blocks the traced
hot path.  Dumping snapshots the deque (also atomic) and serializes
outside any lock; a dump races recording harmlessly (entries recorded
mid-dump simply land in the next dump).

Dump format: one ``run_begin`` record carrying the dump reason, then one
``event`` record per ring entry, named ``flight.<original kind>``, with
fresh 1-based ``seq``, the original monotonic ``ts``/``tid``/``trace``
preserved, and every original field flattened into ``attrs``.  Parents
are deliberately ``null`` — ring entries are a sliding window, so parent
spans may have been evicted; an all-parentless dump is always
structurally valid, and ``validate_trace`` accepts it unchanged.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

from repro.obs import trace as _trace
from repro.obs.metrics import METRICS as _METRICS

__all__ = [
    "FlightRecorder",
    "install_flight",
    "clear_flight",
    "active_flight",
    "flight_record",
    "flight_dump",
]

#: Ring entries above this many attrs get truncated — the recorder must
#: never become the memory hog it exists to debug.
_MAX_ATTRS = 32


class FlightRecorder:
    """Bounded ring of recent obs entries with atomic crash dumps.

    Parameters
    ----------
    capacity:
        Ring size (entries).  512 covers several jobs' worth of solver
        checks at event granularity while staying ~100 KiB.
    dump_dir:
        Fallback directory for dumps when no tracer is installed; a
        tracer's artifact dir wins when present.  Created lazily.
    """

    def __init__(self, capacity=512, dump_dir=None):
        self.capacity = int(capacity)
        self.dump_dir = dump_dir
        self._ring = deque(maxlen=self.capacity)
        self._dump_lock = threading.Lock()
        self._dump_counter = 0
        self.dumps = []          # paths written, newest last
        self.last_dump_at = None

    # -- recording (hot path, no locks) ----------------------------------

    def record(self, kind, name, attrs, dur=None, trace=None):
        """Record one entry; called from the tracing-off span/event path."""
        entry = {
            "k": kind,
            "name": name,
            "ts": time.monotonic(),
            "tid": threading.get_ident(),
        }
        if trace is not None:
            entry["trace"] = trace
        if dur is not None:
            entry["dur"] = dur
        if attrs:
            entry["attrs"] = attrs
        self._ring.append(entry)

    def tee(self, record):
        """Mirror a full tracer record; called from ``Tracer._emit``."""
        self._ring.append(record)

    def __len__(self):
        return len(self._ring)

    # -- dumping ---------------------------------------------------------

    def _entry_to_event(self, entry, seq, run_id):
        """Normalize one ring entry to a schema-valid ``event`` record."""
        kind = entry.get("k") or entry.get("ev") or "event"
        name = entry.get("name")
        if name is None:
            # span_begin/span_end tees carry their name; run_begin does
            # not — fall back to the kind itself.
            name = kind
        attrs = dict(entry.get("attrs") or {})
        for field, value in entry.items():
            if field in ("k", "ev", "name", "ts", "tid", "trace", "attrs",
                         "run", "seq", "parent"):
                continue
            attrs[field] = value
        if len(attrs) > _MAX_ATTRS:
            attrs = dict(list(attrs.items())[:_MAX_ATTRS])
            attrs["truncated"] = True
        record = {
            "ev": "event",
            "ts": entry.get("ts", 0.0),
            "run": run_id,
            "tid": entry.get("tid", 0),
            "name": f"flight.{kind}",
            "parent": None,
            "attrs": attrs,
            "seq": seq,
        }
        if entry.get("trace") is not None:
            record["trace"] = entry["trace"]
        return record

    def dump(self, reason, dump_dir=None):
        """Write the ring to an ``obs/v1`` JSONL dump; returns the path.

        The dump lands in the active tracer's artifact directory when a
        tracer is installed (so trace + flight dump archive as one unit),
        else in ``dump_dir`` / the recorder's configured directory, else
        the current directory.  Written to a temp file and ``os.replace``d
        into place, so a reader never sees a torn dump.  Never raises —
        the recorder is called from crash paths where a second failure
        must not mask the first; returns ``None`` on failure.
        """
        try:
            with self._dump_lock:
                self._dump_counter += 1
                ordinal = self._dump_counter
            entries = list(self._ring)   # atomic snapshot
            stem = f"flight-{ordinal:03d}-{reason.replace('/', '-')}.jsonl"
            tracer = _trace.active_tracer()
            if tracer is not None:
                path = tracer.artifact_path(stem)
            else:
                directory = dump_dir or self.dump_dir or "."
                os.makedirs(directory, exist_ok=True)
                path = os.path.join(directory, stem)
            run_id = f"flight-{os.getpid()}-{ordinal}"
            records = [{
                "ev": "run_begin",
                "ts": time.monotonic(),
                "run": run_id,
                "tid": threading.get_ident(),
                "attrs": {
                    "pid": os.getpid(),
                    "epoch": time.time(),
                    "reason": reason,
                    "entries": len(entries),
                    "capacity": self.capacity,
                },
                "seq": 1,
            }]
            for offset, entry in enumerate(entries):
                records.append(
                    self._entry_to_event(entry, seq=offset + 2,
                                         run_id=run_id))
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, default=str,
                                            separators=(",", ":")) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self.dumps.append(path)
            self.last_dump_at = time.time()
            _METRICS.inc("flight.dumps")
            _trace.event("flight.dump", reason=reason, path=path,
                         entries=len(entries))
            return path
        except Exception:  # noqa: BLE001 - crash-path: never mask the cause
            _METRICS.inc("flight.dump_errors")
            return None


def install_flight(capacity=512, dump_dir=None):
    """Create and install a process-wide recorder; returns it.

    Installing over an existing recorder replaces it (the old ring is
    dropped) — daemons install exactly one at startup.
    """
    recorder = FlightRecorder(capacity=capacity, dump_dir=dump_dir)
    _trace.set_flight(recorder)
    return recorder


def clear_flight():
    """Remove the installed recorder (test hygiene)."""
    _trace.set_flight(None)


def active_flight():
    """The installed recorder, or ``None``."""
    return _trace.active_flight()


def flight_record(kind, name, **attrs):
    """Record directly into the installed recorder; no-op when absent."""
    recorder = _trace.active_flight()
    if recorder is not None:
        recorder.record(kind, name, attrs,
                        trace=_trace.current_trace_id())


def flight_dump(reason, dump_dir=None):
    """Dump the installed recorder; returns the path or ``None``."""
    recorder = _trace.active_flight()
    if recorder is None:
        return None
    return recorder.dump(reason, dump_dir=dump_dir)
