"""Structured span tracing: append-only JSONL events with span nesting.

A :class:`Tracer` writes one JSON object per line to a trace file.  Every
event carries a monotonic timestamp (``ts``), the tracer's run id
(``run``), a process-wide sequence number (``seq``) and the emitting
thread id (``tid``); span begin/end events additionally carry a span
``id`` and the ``parent`` span open on the same thread (or an explicitly
passed one, for work handed across threads).  The file is flushed per
event, so a crashed or hard-killed run still leaves a readable prefix —
the whole point of a provenance log.

Installation is process-global, mirroring ``repro.runtime.faults``: the
instrumented layers call the module-level :func:`span` / :func:`event`
helpers, which are near-free no-ops while no tracer is installed.  That
no-op fast path is the design constraint everything else bends around —
tracing must be *always available* without making the untraced hot path
measurably slower (the test suite guards this).

Span stacks are thread-local: concurrent per-instruction dispatch threads
each nest their own spans correctly.  Work submitted to another thread can
pin its parent explicitly with ``span_parent=...``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid

__all__ = [
    "Tracer",
    "active_tracer",
    "install",
    "clear",
    "installed",
    "span",
    "event",
    "current_span_id",
    "new_trace_id",
    "current_trace_id",
    "trace_context",
    "set_flight",
    "active_flight",
]

_ACTIVE = None

#: Sentinel distinguishing "no explicit parent" from "parentless" (None).
_UNSET = object()

#: The installed flight recorder (``repro.obs.flight.FlightRecorder``) or
#: ``None``.  Lives here — not in ``flight`` — so the span/event fast
#: paths can consult it with one module-global read and ``flight`` can
#: import this module without a cycle.
_FLIGHT = None


def active_tracer():
    """The installed :class:`Tracer`, or ``None``."""
    return _ACTIVE


def install(tracer):
    global _ACTIVE
    _ACTIVE = tracer


def clear():
    global _ACTIVE
    _ACTIVE = None


def set_flight(recorder):
    """Install (or with ``None`` remove) the process flight recorder."""
    global _FLIGHT
    _FLIGHT = recorder


def active_flight():
    """The installed flight recorder, or ``None``."""
    return _FLIGHT


# -- cross-process trace context -----------------------------------------
#
# A ``traceparent``-style correlation id, minted once per service job at
# ``ServiceClient.submit`` and carried through the protocol, the job
# store, the runner and the worker wire protocols.  The context is a
# thread-local stack (nested jobs compose; the common case is depth 1);
# while a context is open, every record the :class:`Tracer` emits — and
# every flight-recorder entry — is stamped with a top-level ``trace``
# field, so one job's events can be sliced out of a multi-job, multi-
# process trace by id alone.

_CTX = threading.local()


def new_trace_id():
    """Mint a fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def current_trace_id():
    """The innermost open trace id on this thread, or ``None``."""
    stack = getattr(_CTX, "stack", None)
    return stack[-1] if stack else None


class trace_context:
    """``with trace_context(tid):`` — stamp emitted events with ``tid``.

    A ``None``/empty id is a no-op, so call sites can pass a job's
    (possibly absent) trace id unconditionally.
    """

    __slots__ = ("_trace_id", "_pushed")

    def __init__(self, trace_id):
        self._trace_id = trace_id or None
        self._pushed = False

    def __enter__(self):
        if self._trace_id is not None:
            stack = getattr(_CTX, "stack", None)
            if stack is None:
                stack = _CTX.stack = []
            stack.append(self._trace_id)
            self._pushed = True
        return self._trace_id

    def __exit__(self, exc_type, exc, tb):
        if self._pushed:
            _CTX.stack.pop()
        return False


class _NullSpan:
    """The disabled-tracing span: a shared, allocation-free no-op."""

    __slots__ = ()
    id = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _FlightSpan:
    """Tracing-off span that still leaves one flight-recorder entry.

    Records a single ``span`` entry (with duration) on exit — half the
    ring pressure of begin/end pairs, and the recorder's consumers only
    ever read dumps, where the merged form is what you want anyway.
    """

    __slots__ = ("_flight", "_name", "_attrs", "_started")
    id = None

    def __init__(self, flight, name, attrs):
        self._flight = flight
        self._name = name
        self._attrs = attrs
        self._started = 0.0

    def __enter__(self):
        self._started = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb):
        attrs = self._attrs
        if exc_type is not None:
            attrs = dict(attrs, error=exc_type.__name__)
        self._flight.record(
            "span", self._name, attrs,
            dur=time.monotonic() - self._started,
            trace=current_trace_id(),
        )
        return False


def span(name, span_parent=_UNSET, **attrs):
    """A span context manager, or the shared no-op when tracing is off.

    The no-op path is deliberately minimal — one global read and one
    attribute return — so instrumentation can stay in hot loops
    unconditionally.  With a flight recorder installed (and no tracer)
    the span still leaves a ring entry, timed but never written to disk
    unless a dump triggers.
    """
    tracer = _ACTIVE
    if tracer is None:
        flight = _FLIGHT
        if flight is None:
            return _NULL_SPAN
        return _FlightSpan(flight, name, attrs)
    return tracer.span(name, span_parent=span_parent, **attrs)


def event(name, span_parent=_UNSET, **attrs):
    """Emit a point event on the active tracer; no-op when disabled."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.event(name, span_parent=span_parent, **attrs)
    else:
        flight = _FLIGHT
        if flight is not None:
            flight.record("event", name, attrs, trace=current_trace_id())


def current_span_id():
    """The innermost open span id on this thread, or ``None``."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.current_span_id()


class installed:
    """``with installed(tracer):`` — scope a tracer installation.

    Restores whatever was installed before, so nested scopes compose and a
    test can never leak a tracer into the next one.
    """

    def __init__(self, tracer):
        self._tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = active_tracer()
        install(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb):
        install(self._previous)
        return False


class _Span:
    """One open span; emits begin on ``__enter__`` and end on ``__exit__``."""

    __slots__ = ("_tracer", "name", "id", "_parent", "_attrs", "_started")

    def __init__(self, tracer, name, parent, attrs):
        self._tracer = tracer
        self.name = name
        self._parent = parent
        self._attrs = attrs
        self.id = None
        self._started = 0.0

    def __enter__(self):
        tracer = self._tracer
        self.id = tracer._new_span_id()
        parent = self._parent
        if parent is _UNSET:
            parent = tracer.current_span_id()
        self._parent = parent
        tracer._push(self.id, self.name)
        self._started = time.monotonic()
        tracer._emit("span_begin", {
            "id": self.id, "parent": parent, "name": self.name,
            "attrs": self._attrs,
        })
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.monotonic() - self._started
        tracer = self._tracer
        tracer._pop(self.id)
        end_attrs = {}
        if exc_type is not None:
            end_attrs["error"] = exc_type.__name__
        tracer._emit("span_end", {
            "id": self.id, "name": self.name, "dur": duration,
            "attrs": end_attrs,
        })
        return False


class Tracer:
    """Writes structured trace events to an append-only JSONL file.

    Parameters
    ----------
    path:
        Trace file path; opened for writing (truncating) immediately, so
        an empty trace file is evidence the run died before the first
        event, not after it.
    run_id:
        Stable identifier stamped on every event; generated when omitted.
        Resumed or sharded runs can pass the same id to make their traces
        mergeable.
    """

    def __init__(self, path, run_id=None):
        self.path = os.fspath(path)
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self._file = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0
        self._span_counter = 0
        self._artifact_counter = 0
        self._artifact_dir = None
        self._local = threading.local()
        self._closed = False
        self._emit("run_begin", {"attrs": {
            "pid": os.getpid(),
            "epoch": time.time(),
            "session": f"{os.getpid()}@{os.uname().nodename}"
            if hasattr(os, "uname") else str(os.getpid()),
        }})

    # -- emission --------------------------------------------------------

    def _emit(self, kind, fields):
        record = {
            "ev": kind,
            "ts": time.monotonic(),
            "run": self.run_id,
            "tid": threading.get_ident(),
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace"] = trace_id
        record.update(fields)
        flight = _FLIGHT
        if flight is not None:
            flight.tee(record)
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            if self._closed:
                return
            # seq is allocated under the lock (write order == seq order);
            # everything else was serialized outside it.
            self._seq += 1
            line = line[:-1] + f',"seq":{self._seq}}}'
            self._file.write(line + "\n")
            self._file.flush()

    def _new_span_id(self):
        with self._lock:
            self._span_counter += 1
            return self._span_counter

    # -- span stack (thread-local) ---------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_id, name):
        self._stack().append((span_id, name))

    def _pop(self, span_id):
        stack = self._stack()
        # Defensive: pop through anything a leaked generator left open.
        while stack:
            popped = stack.pop()
            if popped[0] == span_id:
                return

    def current_span_id(self):
        stack = getattr(self._local, "stack", None)
        return stack[-1][0] if stack else None

    def current_span_name(self):
        stack = getattr(self._local, "stack", None)
        return stack[-1][1] if stack else None

    # -- public API ------------------------------------------------------

    def span(self, name, span_parent=_UNSET, **attrs):
        """A context manager emitting ``span_begin``/``span_end`` events.

        ``span_parent`` overrides the thread-local parent — pass the
        originating span's id when handing work to another thread.
        """
        return _Span(self, name, span_parent, attrs)

    def event(self, name, span_parent=_UNSET, **attrs):
        """Emit a point event parented to the current (or given) span."""
        parent = span_parent
        if parent is _UNSET:
            parent = self.current_span_id()
        self._emit("event", {"name": name, "parent": parent, "attrs": attrs})

    def artifact_path(self, stem):
        """A unique path under the trace's artifact directory.

        Artifacts (counterexample VCDs, resume handles, ...) live in
        ``<trace>-artifacts/`` next to the JSONL so a trace directory can
        be archived as one unit; events reference artifacts by this path.
        """
        with self._lock:
            if self._artifact_dir is None:
                base, _ = os.path.splitext(self.path)
                self._artifact_dir = base + "-artifacts"
                os.makedirs(self._artifact_dir, exist_ok=True)
            self._artifact_counter += 1
            ordinal = self._artifact_counter
        return os.path.join(self._artifact_dir, f"{ordinal:04d}-{stem}")

    def close(self):
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
