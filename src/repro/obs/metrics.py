"""The unified metrics registry: one snapshot/delta API for every counter.

Before this module the repo's counters were scattered: encode effort in
``repro.smt.counters``, worker-pool health in ``SolverWorkerPool.stats``,
budget consumption inside ``Budget`` instances, trace-cache hit rates on
``TraceCache``.  Each had its own ad-hoc reading convention, which is why
no report could answer "what did this run cost, in every unit we track?".

:data:`METRICS` is the process-global registry.  Producers call
:meth:`MetricsRegistry.inc` with a dotted counter name (``"worker.crashes"``,
``"budget.conflicts_charged"``); consumers call :meth:`snapshot` /
:func:`delta_since`.  Snapshots *merge in* the encode counters from
``repro.smt.counters`` under an ``encode.`` prefix — those stay where they
are (the SMT layer must not import upward), the registry simply absorbs
them at read time, so one snapshot really is the whole picture.

Latency distributions are tracked by fixed-boundary histograms:
producers call :meth:`MetricsRegistry.observe` with a dotted name and a
value in seconds; snapshots expose each histogram under a ``hist.``
prefixed key whose value is a summary dict (count/sum/min/max, p50/p90/
p99 interpolated from the bucket counts, plus the raw cumulative-free
bucket counts and their upper bounds).  The ``hist.`` prefix keeps the
flat counter namespace int-only, so prefix scans over ``encode.`` /
``portfolio.`` counters and the int subtraction in :meth:`delta_since`
never meet a dict by surprise.

Increments take a lock: they happen at event granularity (a worker crash,
a facade check, a CEGIS iteration), never inside the SAT core's inner
loops, so contention is negligible.  Observations share the same lock
and granularity; each is a bisect plus two adds.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Histogram",
    "LATENCY_BOUNDS",
    "MetricsRegistry",
    "METRICS",
    "snapshot",
    "delta_since",
    "percentiles_from_buckets",
]

#: Default bucket upper bounds (seconds) for latency histograms: a
#: roughly-logarithmic ladder from 1ms to 5 minutes.  Everything above
#: the last bound lands in the implicit +inf overflow bucket.
LATENCY_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def percentiles_from_buckets(bounds, buckets, count, quantiles=(0.5, 0.9, 0.99)):
    """Estimate quantiles from per-bucket counts (not cumulative).

    Uses the bucket upper bound as the estimate — the conventional
    conservative choice for fixed-boundary histograms (a Prometheus
    ``histogram_quantile`` would interpolate; with our dense ladder the
    bound itself is within one bucket width of the truth).  The overflow
    bucket reports the last finite bound.  Returns ``{q: value}`` with
    ``None`` values when the histogram is empty.
    """
    if count <= 0:
        return {q: None for q in quantiles}
    out = {}
    for q in quantiles:
        rank = q * count
        seen = 0
        value = None
        for i, n in enumerate(buckets):
            seen += n
            if seen >= rank and n:
                value = bounds[i] if i < len(bounds) else bounds[-1]
                break
        if value is None:
            # Rank fell past every populated bucket (float edge); use the
            # highest populated bucket's bound.
            for i in range(len(buckets) - 1, -1, -1):
                if buckets[i]:
                    value = bounds[i] if i < len(bounds) else bounds[-1]
                    break
        out[q] = value
    return out


class Histogram:
    """A fixed-boundary histogram: bucket counts plus sum/min/max.

    Not thread-safe on its own — the owning :class:`MetricsRegistry`
    serializes access under its lock.  ``buckets`` has one slot per
    finite bound plus a trailing overflow slot.
    """

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds=LATENCY_BOUNDS):
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def summary(self):
        """A plain-dict summary (JSON-safe) for snapshots and events."""
        pcts = percentiles_from_buckets(self.bounds, self.buckets, self.count)
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": self.min,
            "max": self.max,
            "p50": pcts[0.5],
            "p90": pcts[0.9],
            "p99": pcts[0.99],
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


def _summary_delta(now, before):
    """Subtract two histogram summaries, recomputing percentiles.

    ``min``/``max`` are not delta-able from summaries, so the delta
    reports the *current* extremes (documented, and good enough for the
    "what did this run cost" reading the delta API serves).
    """
    if not isinstance(before, dict) or before.get("bounds") != now.get("bounds"):
        # Histogram born after ``before`` (or boundary mismatch after a
        # reconfiguration): the full current summary is the delta.
        return dict(now)
    buckets = [a - b for a, b in zip(now["buckets"], before["buckets"])]
    count = now["count"] - before["count"]
    pcts = percentiles_from_buckets(now["bounds"], buckets, count)
    return {
        "count": count,
        "sum": round(now["sum"] - before["sum"], 9),
        "min": now["min"],
        "max": now["max"],
        "p50": pcts[0.5],
        "p90": pcts[0.9],
        "p99": pcts[0.99],
        "bounds": list(now["bounds"]),
        "buckets": buckets,
    }


class MetricsRegistry:
    """Named monotonic counters and histograms with snapshot/delta reads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
        self._hists = {}

    def inc(self, name, value=1):
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + value

    def get(self, name):
        """Current value of ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counts.get(name, 0)

    def observe(self, name, value, bounds=LATENCY_BOUNDS):
        """Record ``value`` (seconds) into histogram ``name``.

        The histogram is created on first observation with ``bounds``;
        later calls ignore the argument (boundaries are fixed for the
        histogram's life, which is what makes deltas subtractable).
        """
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram(bounds)
            hist.observe(value)

    def histogram(self, name):
        """Summary dict for histogram ``name`` (``None`` if never observed)."""
        with self._lock:
            hist = self._hists.get(name)
            return hist.summary() if hist is not None else None

    def snapshot(self):
        """Every counter, with the encode counters merged under ``encode.``
        and histogram summaries under ``hist.``.

        The import is deferred so this module stays a leaf the runtime
        layer can import without dragging ``repro.smt`` in.
        """
        from repro.smt import counters as _encode

        merged = {
            f"encode.{name}": value
            for name, value in _encode.snapshot().items()
        }
        with self._lock:
            merged.update(self._counts)
            merged.update(
                (f"hist.{name}", hist.summary())
                for name, hist in self._hists.items()
            )
        return merged

    def delta_since(self, before):
        """Counters accumulated since an earlier :meth:`snapshot`.

        Counters born after ``before`` appear with their full value;
        counters absent from the current snapshot are dropped (they were
        zero then and are zero now).  Histogram entries (``hist.``-keyed
        dicts) are subtracted elementwise with percentiles recomputed
        from the delta buckets; their min/max report current extremes.
        """
        now = self.snapshot()
        out = {}
        for name, value in now.items():
            if isinstance(value, dict):
                out[name] = _summary_delta(value, before.get(name))
            else:
                out[name] = value - before.get(name, 0)
        return out

    def reset(self):
        """Forget the registry's own counters and histograms (the encode
        counters are owned by ``repro.smt.counters`` and reset there).
        Test hygiene only — production counters are monotonic for the
        process life."""
        with self._lock:
            self._counts.clear()
            self._hists.clear()


#: The process-wide registry every instrumented layer increments.
METRICS = MetricsRegistry()


def snapshot():
    """Module-level convenience for :meth:`MetricsRegistry.snapshot`."""
    return METRICS.snapshot()


def delta_since(before):
    """Module-level convenience for :meth:`MetricsRegistry.delta_since`."""
    return METRICS.delta_since(before)
