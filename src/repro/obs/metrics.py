"""The unified metrics registry: one snapshot/delta API for every counter.

Before this module the repo's counters were scattered: encode effort in
``repro.smt.counters``, worker-pool health in ``SolverWorkerPool.stats``,
budget consumption inside ``Budget`` instances, trace-cache hit rates on
``TraceCache``.  Each had its own ad-hoc reading convention, which is why
no report could answer "what did this run cost, in every unit we track?".

:data:`METRICS` is the process-global registry.  Producers call
:meth:`MetricsRegistry.inc` with a dotted counter name (``"worker.crashes"``,
``"budget.conflicts_charged"``); consumers call :meth:`snapshot` /
:func:`delta_since`.  Snapshots *merge in* the encode counters from
``repro.smt.counters`` under an ``encode.`` prefix — those stay where they
are (the SMT layer must not import upward), the registry simply absorbs
them at read time, so one snapshot really is the whole picture.

Increments take a lock: they happen at event granularity (a worker crash,
a facade check, a CEGIS iteration), never inside the SAT core's inner
loops, so contention is negligible.
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry", "METRICS", "snapshot", "delta_since"]


class MetricsRegistry:
    """Named monotonic counters with snapshot/delta reads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}

    def inc(self, name, value=1):
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + value

    def get(self, name):
        """Current value of ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self):
        """Every counter, with the encode counters merged under ``encode.``.

        The import is deferred so this module stays a leaf the runtime
        layer can import without dragging ``repro.smt`` in.
        """
        from repro.smt import counters as _encode

        merged = {
            f"encode.{name}": value
            for name, value in _encode.snapshot().items()
        }
        with self._lock:
            merged.update(self._counts)
        return merged

    def delta_since(self, before):
        """Counters accumulated since an earlier :meth:`snapshot`.

        Counters born after ``before`` appear with their full value;
        counters absent from the current snapshot are dropped (they were
        zero then and are zero now).
        """
        now = self.snapshot()
        return {
            name: value - before.get(name, 0)
            for name, value in now.items()
        }

    def reset(self):
        """Forget the registry's own counters (the encode counters are
        owned by ``repro.smt.counters`` and reset there).  Test hygiene
        only — production counters are monotonic for the process life."""
        with self._lock:
            self._counts.clear()


#: The process-wide registry every instrumented layer increments.
METRICS = MetricsRegistry()


def snapshot():
    """Module-level convenience for :meth:`MetricsRegistry.snapshot`."""
    return METRICS.snapshot()


def delta_since(before):
    """Module-level convenience for :meth:`MetricsRegistry.delta_since`."""
    return METRICS.delta_since(before)
