"""Post-hoc trace analysis: flamegraph-style summary + query provenance.

Consumes an ``obs/v1`` JSONL trace (see ``repro.obs.schema``) and answers
the questions the observability layer exists for:

* *Where did the time go?*  An indented, flamegraph-style text tree of
  spans aggregated by path (with per-instruction attribution), inclusive
  seconds and invocation counts.
* *Which solver queries burned the budget?*  A top-K table of
  ``solver.check`` provenance events sorted by wall time, each attributed
  to its owning span chain.
* *What did the run cost in exact units?*  Iteration counts re-derived
  from ``cegis.iteration`` spans and encode-counter deltas re-derived
  from ``metrics.snapshot`` events — both must match the run's own
  reported stats, which is what makes the trace trustworthy.
* *What artifacts did it leave?*  Counterexample VCD paths recorded by
  failed CEGIS verify queries.

``scripts/trace_report.py`` is the CLI wrapper; everything here is
importable so tests can assert exactness without scraping stdout.
"""

from __future__ import annotations

from repro.obs.schema import load_events

__all__ = [
    "span_index",
    "flame_lines",
    "solver_queries",
    "top_queries_lines",
    "totals",
    "trace_ids",
    "job_trace_id",
    "slice_by_trace",
    "render_report",
    "render_job_report",
]


def span_index(events):
    """Map span id -> {name, attrs, parent, dur (None while unclosed)}."""
    spans = {}
    for ev in events:
        if ev["ev"] == "span_begin":
            spans[ev["id"]] = {
                "name": ev["name"],
                "attrs": ev.get("attrs", {}),
                "parent": ev.get("parent"),
                "dur": None,
            }
        elif ev["ev"] == "span_end":
            if ev["id"] in spans:
                spans[ev["id"]]["dur"] = ev["dur"]
    return spans


def _display_name(info):
    """A span's display label: its name plus the attribute that names the
    unit of work (instruction, Table 1 row, problem)."""
    attrs = info["attrs"]
    for key in ("instr", "row", "problem"):
        if key in attrs:
            return f"{info['name']}[{attrs[key]}]"
    return info["name"]


def _path_of(span_id, spans, cache):
    """The display-name path from the root to ``span_id`` (a tuple)."""
    if span_id in cache:
        return cache[span_id]
    info = spans[span_id]
    parent = info["parent"]
    if parent is None or parent not in spans:
        path = (_display_name(info),)
    else:
        path = _path_of(parent, spans, cache) + (_display_name(info),)
    cache[span_id] = path
    return path


def flame_lines(events, min_seconds=0.0):
    """Flamegraph-style text lines: spans aggregated by display path.

    Each line shows inclusive seconds (summed over all spans sharing the
    path) and an invocation count; children sort by time, descending.
    """
    spans = span_index(events)
    cache = {}
    agg = {}  # path tuple -> [seconds, count]
    for span_id, info in spans.items():
        path = _path_of(span_id, spans, cache)
        bucket = agg.setdefault(path, [0.0, 0])
        bucket[0] += info["dur"] or 0.0
        bucket[1] += 1

    # Parents always aggregate at least as much inclusive time as each
    # child, so sorting siblings by time gives the classic flame shape.
    def children_of(prefix):
        depth = len(prefix)
        kids = [p for p in agg
                if len(p) == depth + 1 and p[:depth] == prefix]
        return sorted(kids, key=lambda p: -agg[p][0])

    lines = []
    label_width = max(
        (2 * (len(p) - 1) + len(p[-1]) for p in agg), default=0
    )

    def walk(prefix):
        for path in children_of(prefix):
            seconds, count = agg[path]
            if seconds < min_seconds and count == 0:
                continue
            indent = "  " * (len(path) - 1)
            label = f"{indent}{path[-1]}"
            lines.append(
                f"  {label:<{label_width}}  {seconds:>9.3f}s  x{count}"
            )
            walk(path)

    walk(())
    return lines


def solver_queries(events):
    """All ``solver.check`` provenance events, annotated with their owning
    span's display path."""
    spans = span_index(events)
    cache = {}
    queries = []
    for ev in events:
        if ev["ev"] != "event" or ev["name"] != "solver.check":
            continue
        parent = ev.get("parent")
        owner = "(no span)"
        if parent is not None and parent in spans:
            owner = "/".join(_path_of(parent, spans, cache))
        record = dict(ev["attrs"])
        record["owner"] = owner
        record["parent"] = parent
        queries.append(record)
    return queries


def top_queries_lines(events, top=10):
    """The top-K most expensive solver queries as table lines."""
    queries = sorted(
        solver_queries(events),
        key=lambda q: -(q.get("wall") or 0.0),
    )[:top]
    if not queries:
        return ["  (no solver queries in trace)"]
    lines = [
        "  {:>9}  {:<16}  {:>9}  {:>8}  {:>8}  {:<18}  {}".format(
            "wall_s", "result", "conflicts", "clauses", "vars", "kind",
            "owning span",
        )
    ]
    for q in queries:
        result = q.get("result", "?")
        if q.get("reason"):
            result = f"{result}({q['reason']})"
        lines.append(
            "  {:>9.3f}  {:<16}  {:>9}  {:>8}  {:>8}  {:<18}  {}".format(
                q.get("wall") or 0.0, result, q.get("conflicts", 0),
                q.get("clauses", 0), q.get("vars", 0),
                q.get("kind") or "-", q["owner"],
            )
        )
    return lines


def totals(events):
    """Exact aggregates re-derived from the trace alone.

    ``iterations`` counts ``cegis.iteration`` spans; ``encode_delta`` is
    the difference between the first and last ``metrics.snapshot`` events'
    ``encode.*`` counters (the same process-global counters the run's own
    stats report); ``counterexample_vcds`` lists the waveform paths failed
    verify queries dumped; ``orphan_queries`` counts solver checks with no
    owning span (must be 0 for a fully attributed run); ``portfolio_delta``
    is the same first-vs-last snapshot difference for the ``portfolio.*``
    counters (races, hedges fired, cancellations, quarantines,
    disagreements) — empty when the run never raced a portfolio.

    ``solver_internals`` sums the per-check solver work each
    ``solver.check`` event carried (propagations, restarts, learned,
    deleted, trail-reuse, chronological backtracks).  The facade charges
    the *same* per-check deltas to ``repro.smt.counters``, so for a run
    whose snapshots bracket every check, each field must equal the
    ``encode_delta`` entry of the same name with an ``sat_`` prefix —
    the event stream and the counters reconcile exactly, which is what
    makes per-query attribution trustworthy.
    """
    iterations = 0
    snapshots = []
    vcds = []
    queries = 0
    orphans = 0
    internals = {
        "propagations": 0,
        "restarts": 0,
        "learned": 0,
        "deleted": 0,
        "trail_reuse_hits": 0,
        "trail_reuse_levels_saved": 0,
        "chrono_backtracks": 0,
    }
    for ev in events:
        kind = ev["ev"]
        if kind == "span_begin" and ev["name"] == "cegis.iteration":
            iterations += 1
        elif kind == "event":
            name = ev["name"]
            if name == "metrics.snapshot":
                snapshots.append(ev["attrs"])
            elif name == "cegis.counterexample":
                path = ev["attrs"].get("vcd")
                if path:
                    vcds.append(path)
            elif name == "solver.check":
                queries += 1
                if ev.get("parent") is None:
                    orphans += 1
                attrs = ev["attrs"]
                for key in internals:
                    internals[key] += attrs.get(key, 0)
    encode_delta = {}
    portfolio_delta = {}
    if len(snapshots) >= 2:
        first, last = snapshots[0], snapshots[-1]
        for key, value in last.items():
            if key.startswith("encode."):
                encode_delta[key[len("encode."):]] = (
                    value - first.get(key, 0)
                )
            elif key.startswith("portfolio."):
                # Portfolio counters are born lazily (first race), so
                # they may be absent from the opening snapshot entirely.
                portfolio_delta[key[len("portfolio."):]] = (
                    value - first.get(key, 0)
                )
    wall = 0.0
    if events:
        wall = events[-1]["ts"] - events[0]["ts"]
    return {
        "iterations": iterations,
        "encode_delta": encode_delta,
        "portfolio_delta": portfolio_delta,
        "counterexample_vcds": vcds,
        "solver_queries": queries,
        "orphan_queries": orphans,
        "solver_internals": internals,
        "wall_seconds": wall,
    }


def trace_ids(events):
    """Distinct trace-context ids in the trace -> stamped record count."""
    counts = {}
    for ev in events:
        tid = ev.get("trace")
        if tid:
            counts[tid] = counts.get(tid, 0) + 1
    return counts


def job_trace_id(events, job_id):
    """The trace id stamped on job ``job_id``'s records, or ``None``.

    Resolves through the daemon's ``service.job`` span (its ``job_id``
    attribute names the job; the record's ``trace`` field carries the
    id minted at submit).  A ``job_id`` that is itself one of the
    trace ids in the file is accepted as-is, so submitters who kept
    the ack's ``trace_id`` can slice without knowing the job id.
    """
    for ev in events:
        if (ev["ev"] == "span_begin" and ev["name"] == "service.job"
                and ev.get("attrs", {}).get("job_id") == job_id
                and ev.get("trace")):
            return ev["trace"]
    if job_id in trace_ids(events):
        return job_id
    return None


def slice_by_trace(events, trace_id):
    """Every record stamped with ``trace_id``, in trace order.

    Spans that straddle a context boundary (began inside it, ended
    after it was popped, or vice versa) keep both halves, so
    :func:`span_index` still sees complete durations for the slice.
    """
    sliced = [ev for ev in events if ev.get("trace") == trace_id]
    begin_ids = {ev["id"] for ev in sliced if ev["ev"] == "span_begin"}
    end_ids = {ev["id"] for ev in sliced if ev["ev"] == "span_end"}
    straddlers = [
        ev for ev in events
        if ev.get("trace") != trace_id and (
            (ev["ev"] == "span_end" and ev["id"] in begin_ids)
            or (ev["ev"] == "span_begin" and ev["id"] in end_ids)
        )
    ]
    if straddlers:
        sliced = sorted(sliced + straddlers,
                        key=lambda ev: (ev["ts"], ev.get("seq", 0)))
    return sliced


def render_job_report(path, job_id, top=10):
    """The per-job report: the trace sliced to one job's context.

    Raises ``KeyError`` when neither a ``service.job`` span nor a raw
    trace id matches ``job_id``.
    """
    events, summary = load_events(path)
    tid = job_trace_id(events, job_id)
    if tid is None:
        raise KeyError(
            f"no service.job span or trace id matching {job_id!r} "
            f"in {path} ({len(trace_ids(events))} trace context(s) present)"
        )
    sliced = slice_by_trace(events, tid)
    agg = totals(sliced)
    lines = [
        f"job {job_id} (trace {tid}) in {path}",
        f"  {len(sliced)} of {len(events)} records carry this trace, "
        f"run {summary['run']}",
        f"  wall span {agg['wall_seconds']:.3f}s, "
        f"{agg['solver_queries']} solver queries "
        f"({agg['orphan_queries']} unattributed), "
        f"{agg['iterations']} CEGIS iterations",
        "",
        "flame (inclusive seconds, x invocations):",
    ]
    lines.extend(flame_lines(sliced) or ["  (no spans in slice)"])
    lines.append("")
    lines.append(f"top {top} solver queries by wall time:")
    lines.extend(top_queries_lines(sliced, top=top))
    return "\n".join(lines)


def render_report(path, top=10):
    """The full human-readable report for one trace file."""
    events, summary = load_events(path)
    agg = totals(events)
    lines = [
        f"trace {path}",
        f"  run {summary['run']}: {summary['events']} events, "
        f"{summary['spans']} spans"
        + (f", {len(summary['unclosed'])} unclosed (truncated run)"
           if summary["unclosed"] else ""),
        f"  wall span {agg['wall_seconds']:.3f}s, "
        f"{agg['solver_queries']} solver queries "
        f"({agg['orphan_queries']} unattributed), "
        f"{agg['iterations']} CEGIS iterations",
        "",
        "flame (inclusive seconds, x invocations):",
    ]
    lines.extend(flame_lines(events) or ["  (no spans in trace)"])
    lines.append("")
    lines.append(f"top {top} solver queries by wall time:")
    lines.extend(top_queries_lines(events, top=top))
    if agg["encode_delta"]:
        lines.append("")
        lines.append("encode-counter deltas (first -> last snapshot):")
        for key, value in sorted(agg["encode_delta"].items()):
            lines.append(f"  {key:<24} {value:>12}")
    if any(agg["solver_internals"].values()):
        lines.append("")
        lines.append("solver internals (summed over solver.check events):")
        for key, value in sorted(agg["solver_internals"].items()):
            counter = agg["encode_delta"].get(f"sat_{key}")
            note = ""
            if counter is not None:
                note = ("  == counters" if counter == value
                        else f"  != counters ({counter})")
            lines.append(f"  {key:<24} {value:>12}{note}")
    if any(agg["portfolio_delta"].values()):
        lines.append("")
        lines.append("portfolio counters (first -> last snapshot):")
        for key, value in sorted(agg["portfolio_delta"].items()):
            lines.append(f"  {key:<24} {value:>12}")
    if agg["counterexample_vcds"]:
        lines.append("")
        lines.append("counterexample waveforms:")
        for vcd in agg["counterexample_vcds"]:
            lines.append(f"  {vcd}")
    return "\n".join(lines)
