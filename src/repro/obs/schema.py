"""Trace event schema: the contract between emitters and consumers.

``obs/v1`` events are flat JSON objects, one per JSONL line.  Common
envelope (every event):

========  =======  ====================================================
``ev``    str      event kind: ``run_begin``/``span_begin``/``span_end``
                   /``event``
``ts``    number   ``time.monotonic()`` at emission
``run``   str      run id (constant per :class:`~repro.obs.trace.Tracer`)
``tid``   int      emitting thread id
``seq``   int      1-based, strictly increasing in file order
========  =======  ====================================================

An optional ``trace`` field (str) may appear on any event: the
cross-process trace-context id minted at job submission and stamped on
every event emitted while that job's context is open (including events
re-emitted from subprocess workers and flight-recorder dump records).
Events outside any context simply omit it.

Per-kind payloads:

* ``run_begin`` — ``attrs`` (dict: pid, epoch, session);
* ``span_begin`` — ``id`` (int), ``parent`` (int or null), ``name``
  (str), ``attrs`` (dict);
* ``span_end`` — ``id`` (int), ``name`` (str), ``dur`` (number, seconds),
  ``attrs`` (dict; carries ``error`` when the span unwound);
* ``event`` — ``name`` (str), ``parent`` (int or null), ``attrs`` (dict).

:func:`validate_trace` additionally enforces the structural invariants a
consumer relies on: unique span ids, ``span_end``/``parent`` referencing
a previously begun span, and monotonically increasing ``seq``.  Spans
left open are *reported*, not rejected — a hard-killed run's trace is
truncated mid-span by construction, and readable truncated traces are the
reason the format exists.
"""

from __future__ import annotations

import json

__all__ = ["SchemaError", "validate_event", "validate_trace", "load_events"]

EVENT_KINDS = ("run_begin", "span_begin", "span_end", "event")

_COMMON = (
    ("ev", str),
    ("ts", (int, float)),
    ("run", str),
    ("tid", int),
    ("seq", int),
)

_BY_KIND = {
    "run_begin": (("attrs", dict),),
    "span_begin": (("id", int), ("name", str), ("attrs", dict)),
    "span_end": (("id", int), ("name", str), ("dur", (int, float)),
                 ("attrs", dict)),
    "event": (("name", str), ("attrs", dict)),
}

#: kinds that carry a ``parent`` field (int or None)
_PARENTED = ("span_begin", "event")


class SchemaError(ValueError):
    """A trace event (or the trace as a whole) violates ``obs/v1``."""


def validate_event(obj):
    """Validate one decoded event object; returns it, or raises
    :class:`SchemaError` naming the violated field."""
    if not isinstance(obj, dict):
        raise SchemaError(f"event must be a JSON object, got {type(obj).__name__}")
    for field, types in _COMMON:
        if field not in obj:
            raise SchemaError(f"event missing required field {field!r}: {obj}")
        if not isinstance(obj[field], types) or isinstance(obj[field], bool):
            raise SchemaError(
                f"field {field!r} has wrong type "
                f"{type(obj[field]).__name__}: {obj}"
            )
    kind = obj["ev"]
    if kind not in EVENT_KINDS:
        raise SchemaError(f"unknown event kind {kind!r}")
    for field, types in _BY_KIND[kind]:
        if field not in obj:
            raise SchemaError(f"{kind} event missing field {field!r}: {obj}")
        if not isinstance(obj[field], types) or isinstance(obj[field], bool):
            raise SchemaError(
                f"{kind} field {field!r} has wrong type "
                f"{type(obj[field]).__name__}: {obj}"
            )
    if kind in _PARENTED:
        if "parent" not in obj:
            raise SchemaError(f"{kind} event missing field 'parent': {obj}")
        parent = obj["parent"]
        if parent is not None and (not isinstance(parent, int)
                                   or isinstance(parent, bool)):
            raise SchemaError(f"'parent' must be an int or null: {obj}")
    if "trace" in obj and not isinstance(obj["trace"], str):
        # Optional cross-process correlation id (service jobs); absent on
        # events emitted outside any trace context.
        raise SchemaError(f"'trace' must be a string when present: {obj}")
    return obj


def validate_trace(lines):
    """Validate an iterable of JSONL lines as one coherent trace.

    Returns a summary dict: ``events``, ``spans``, ``unclosed`` (ids of
    spans never ended — truncation, not an error), ``run`` (the run id).
    Raises :class:`SchemaError` on any malformed line or broken
    structural invariant.
    """
    begun = {}
    closed = set()
    events = 0
    last_seq = 0
    run = None
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            obj = json.loads(raw)
        except ValueError as exc:
            raise SchemaError(f"line {lineno}: not valid JSON ({exc})")
        try:
            validate_event(obj)
        except SchemaError as exc:
            raise SchemaError(f"line {lineno}: {exc}")
        events += 1
        if obj["seq"] <= last_seq:
            raise SchemaError(
                f"line {lineno}: seq {obj['seq']} not greater than "
                f"previous {last_seq}"
            )
        last_seq = obj["seq"]
        if run is None:
            run = obj["run"]
        elif obj["run"] != run:
            raise SchemaError(
                f"line {lineno}: run id changed mid-trace "
                f"({run!r} -> {obj['run']!r})"
            )
        kind = obj["ev"]
        if kind == "span_begin":
            if obj["id"] in begun:
                raise SchemaError(
                    f"line {lineno}: span id {obj['id']} begun twice"
                )
            begun[obj["id"]] = obj["name"]
        elif kind == "span_end":
            if obj["id"] not in begun:
                raise SchemaError(
                    f"line {lineno}: span_end for unknown span {obj['id']}"
                )
            if obj["id"] in closed:
                raise SchemaError(
                    f"line {lineno}: span {obj['id']} ended twice"
                )
            closed.add(obj["id"])
        if kind in _PARENTED and obj["parent"] is not None:
            if obj["parent"] not in begun:
                raise SchemaError(
                    f"line {lineno}: parent {obj['parent']} never begun"
                )
    return {
        "events": events,
        "spans": len(begun),
        "unclosed": sorted(set(begun) - closed),
        "run": run,
    }


def load_events(path):
    """Parse and validate a trace file; returns (events list, summary)."""
    events = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    summary = validate_trace(lines)
    for raw in lines:
        raw = raw.strip()
        if raw:
            events.append(json.loads(raw))
    return events, summary
