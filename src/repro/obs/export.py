"""Prometheus text exposition for the metrics registry.

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into the
Prometheus text format (version 0.0.4): flat counters become
``counter`` samples, ``hist.``-prefixed histogram summaries become the
conventional ``_bucket``/``_sum``/``_count`` triple with *cumulative*
``le`` labels ending at ``+Inf``.  Names are sanitized (dots and every
other non-``[a-zA-Z0-9_:]`` character become underscores) and prefixed
``repro_`` so the service's series land in one namespace.

No client library, no HTTP server — the daemon's ``telemetry`` op
returns this text verbatim and anything that can speak the JSON-lines
protocol (``scripts/obs_top.py``, a sidecar exporter) can forward it to
a real scrape endpoint.
"""

from __future__ import annotations

import re

__all__ = ["prometheus_name", "render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name, prefix="repro_"):
    """Sanitize a dotted metric name into a Prometheus metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _fmt(value):
    """Prometheus sample value: integers stay integral, floats round-trip."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot, prefix="repro_"):
    """Render a metrics snapshot to Prometheus exposition text.

    ``snapshot`` is exactly what :func:`repro.obs.metrics.snapshot`
    returns: flat int counters plus ``hist.<name>`` summary dicts.
    Returns one string, newline-terminated, stable-sorted by name so
    diffs between scrapes are meaningful.
    """
    counters = []
    histograms = []
    for name, value in sorted(snapshot.items()):
        if isinstance(value, dict):
            histograms.append((name, value))
        else:
            counters.append((name, value))
    lines = []
    for name, value in counters:
        metric = prometheus_name(name, prefix=prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, summary in histograms:
        base = name[len("hist."):] if name.startswith("hist.") else name
        metric = prometheus_name(base, prefix=prefix)
        lines.append(f"# TYPE {metric} histogram")
        bounds = summary.get("bounds", [])
        buckets = summary.get("buckets", [])
        cumulative = 0
        for bound, count in zip(bounds, buckets):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} '
                         f"{cumulative}")
        # The overflow bucket (and the +Inf sample Prometheus requires).
        if len(buckets) > len(bounds):
            cumulative += buckets[len(bounds)]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(summary.get('sum', 0.0))}")
        lines.append(f"{metric}_count {summary.get('count', 0)}")
    return "\n".join(lines) + "\n"
