#!/usr/bin/env python3
"""The Section 5.2 constant-time study (abbreviated sweep).

Synthesizes control for the bespoke three-stage CMOV core, runs the
branch-free SHA-256 kernel over inputs of several lengths on both the
synthesized-control core and the hand-written-reference core, and prints
the cycle counts — which must all be identical.

Run: ``python examples/constant_time_crypto.py``
(use ``examples/reproduce_tables.py --constant-time`` for the full 4..32
sweep recorded in EXPERIMENTS.md).
"""

from repro.eval.constant_time import build_cores, run_constant_time
from repro.eval.report import format_table


def main():
    print("=== synthesizing the crypto core (21-instruction CMOV ISA) ===")
    reference, generated = build_cores(timeout=1800)
    print("done; running SHA-256 at several input lengths...\n")
    rows = run_constant_time(lengths=(4, 8, 16, 24, 32),
                             cores=(reference, generated))
    print(format_table(rows, title="SHA-256 on the constant-time core"))
    cycle_counts = {row.generated_cycles for row in rows}
    assert len(cycle_counts) == 1
    assert all(row.digest_ok and row.reference_digest_ok for row in rows)
    assert all(row.generated_cycles == row.reference_cycles for row in rows)
    print(f"\ncycle count is {rows[0].generated_cycles} for every length: "
          "execution time is input-independent, and the synthesized core "
          "matches the hand-written reference cycle-for-cycle.")


if __name__ == "__main__":
    main()
