#!/usr/bin/env python3
"""Exporting a completed design: Verilog, gate netlist, waveform, SMT-LIB.

Synthesizes the Section 2.3 accumulator and then exercises every backend:

* Verilog for downstream EDA flows;
* the gate-level netlist with and without logic optimization;
* a VCD waveform of a short run;
* the synthesis query of one instruction as an SMT-LIB script (replayable
  on Boolector/CVC5/Z3 — the solvers the paper's artifact uses).

Run: ``python examples/export_artifacts.py [output-dir]``
"""

import sys
from pathlib import Path

from repro.designs import accumulator
from repro.netlist import gate_count, optimize, synthesize_netlist
from repro.oyster import Simulator
from repro.oyster.vcd import VcdRecorder
from repro.oyster.verilog import to_verilog
from repro.smt import terms as T
from repro.smt.smtlib import query_to_smtlib
from repro.synthesis import synthesize
from repro.synthesis.per_instruction import instruction_formula


def main():
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "artifacts")
    out_dir.mkdir(exist_ok=True)
    problem = accumulator.build_problem()
    result = synthesize(problem)
    design = result.completed_design

    verilog_path = out_dir / "accumulator.v"
    verilog_path.write_text(to_verilog(design))
    print(f"wrote {verilog_path}")

    raw = synthesize_netlist(design)
    optimized = optimize(raw)
    print(f"gate netlist: {gate_count(raw)} gates raw, "
          f"{gate_count(optimized)} optimized")

    recorder = VcdRecorder(Simulator(design,
                                     register_init={"state": 2}))
    recorder.step({"reset": 1, "go": 0, "stop": 0, "val": 0})
    for value in (3, 2, 1):
        recorder.step({"reset": 0, "go": 1, "stop": 0, "val": value})
    recorder.step({"reset": 0, "go": 0, "stop": 1, "val": 0})
    vcd_path = recorder.write(out_dir / "accumulator.vcd")
    print(f"wrote {vcd_path} ({len(recorder.changes)} value changes)")

    instruction = problem.spec.instr("go_start")
    formula, trace, _ = instruction_formula(problem, instruction, "q!")
    # Bind the holes to the synthesized constants; the negated formula is
    # then UNSAT exactly when that control is correct for this instruction.
    values = result.hole_values_for("go_start")
    substitution = {
        trace.hole_values[name]: T.bv_const(value,
                                            trace.hole_values[name].width)
        for name, value in values.items()
    }
    bound = T.substitute(formula, substitution)
    smt_path = out_dir / "go_start_query.smt2"
    smt_path.write_text(query_to_smtlib([T.bv_not(bound)]))
    print(f"wrote {smt_path} (UNSAT iff the synthesized control is "
          "correct for go_start)")


if __name__ == "__main__":
    main()
