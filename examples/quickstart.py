#!/usr/bin/env python3
"""Quickstart: synthesize FSM control for the Section 2.3 accumulator.

Demonstrates the whole pipeline on the paper's introductory example:

1. an ILA specification (three FSM states driven by reset/go/stop);
2. a datapath sketch whose next-state logic and state encodings are holes;
3. control logic synthesis with the per-instruction strategy + control
   union;
4. independent formal verification of the completed design;
5. concrete simulation of the result.

Run: ``python examples/quickstart.py``
"""

from repro.designs import accumulator
from repro.oyster import Simulator
from repro.oyster.printer import print_design, print_expr
from repro.synthesis import synthesize, verify_design


def main():
    problem = accumulator.build_problem()
    print("=== datapath sketch (holes are the control logic) ===")
    print(print_design(problem.sketch))

    print("=== synthesizing control logic ===")
    result = synthesize(problem)
    print(result.summary())
    print()
    print("=== generated control logic (Oyster) ===")
    for stmt in result.control_stmts:
        print(f"  {stmt.target} := {print_expr(stmt.expr)}")
    print()

    print("=== independent verification against the ILA spec ===")
    verdict = verify_design(
        result.completed_design, problem.spec, problem.alpha
    )
    print(verdict.summary())
    assert verdict.ok

    print()
    print("=== simulating the completed design ===")
    sim = Simulator(result.completed_design,
                    register_init={"state": accumulator.STATES["STOP"],
                                   "acc": 99})
    trace = [
        ({"reset": 1, "go": 0, "stop": 0, "val": 0}, "reset"),
        ({"reset": 0, "go": 1, "stop": 0, "val": 3}, "go (+3)"),
        ({"reset": 0, "go": 0, "stop": 0, "val": 2}, "continue (+2)"),
        ({"reset": 0, "go": 0, "stop": 1, "val": 1}, "stop"),
    ]
    for inputs, label in trace:
        out = sim.step(inputs)
        print(f"  {label:14s} -> state={sim.peek('state')} "
              f"acc={sim.peek('acc')} out={out['out']}")
    assert sim.peek("acc") == 5
    print("\nquickstart OK: the synthesized FSM accumulates correctly.")


if __name__ == "__main__":
    main()
