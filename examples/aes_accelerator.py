#!/usr/bin/env python3
"""Synthesize FSM control for the AES-128 accelerator (Section 4.3).

The ILA models the encryption as three FSM "instructions" (first,
intermediate, final round); the sketch leaves the state encodings and the
transition logic as holes.  After synthesis the accelerator encrypts the
FIPS-197 vectors in 11 cycles.

Run: ``python examples/aes_accelerator.py``
"""

from repro.designs.aes import aes128_encrypt_block, build_problem
from repro.designs.aes.sketch import RCON_INIT, SBOX_INIT
from repro.oyster.compiled import CompiledSimulator
from repro.oyster.printer import print_expr
from repro.synthesis import synthesize, verify_design

FIPS_PT = 0x3243F6A8885A308D313198A2E0370734
FIPS_KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C


def main():
    problem = build_problem()
    print("=== synthesizing AES FSM control ===")
    result = synthesize(problem, timeout=900)
    print(result.summary())
    print("\n=== synthesized FSM: encodings and transition logic ===")
    for stmt in result.control_stmts:
        print(f"  {stmt.target} := {print_expr(stmt.expr)}")

    print("\n=== verifying against the ILA ===")
    verdict = verify_design(result.completed_design, problem.spec,
                            problem.alpha, const_mems=problem.const_mems)
    print(verdict.summary())
    assert verdict.ok

    print("\n=== encrypting the FIPS-197 Appendix B vector ===")
    accel = CompiledSimulator(
        result.completed_design,
        memory_init={"sbox": SBOX_INIT, "rcon": RCON_INIT},
    )
    for _ in range(11):  # 1 whitening + 9 full + 1 final round
        accel.step({"key_in": FIPS_KEY, "plaintext": FIPS_PT})
    ciphertext = accel.peek("ciphertext")
    print(f"  plaintext  = {FIPS_PT:#034x}")
    print(f"  key        = {FIPS_KEY:#034x}")
    print(f"  ciphertext = {ciphertext:#034x}")
    assert ciphertext == aes128_encrypt_block(FIPS_PT, FIPS_KEY)
    assert ciphertext == 0x3925841D02DC09FBDC118597196A0B32
    print("  matches FIPS-197 and the golden model.")


if __name__ == "__main__":
    main()
