#!/usr/bin/env python3
"""Synthesize a RISC-V core's decoder and run a program on it.

Builds the single-cycle RV32I sketch (a representative instruction subset so
the example runs in under a minute), synthesizes the instruction-decoder
control logic, prints it in the paper's Figure 7 PyRTL style, and then runs
a small assembled program on the completed core, checking every architected
register against the golden instruction-set simulator.

Run: ``python examples/riscv_core.py``
"""

from repro.designs import riscv
from repro.designs.riscv.encodings import assemble
from repro.designs.riscv.iss import GoldenISS
from repro.hdl.codegen import generate_pyrtl_control
from repro.oyster.compiled import CompiledSimulator
from repro.synthesis import synthesize

SUBSET = ["lui", "jal", "beq", "lw", "sw", "addi", "slli", "add", "sub",
          "and", "xor"]

# Fibonacci: x5 = fib(10), via a beq-terminated loop.
PROGRAM = [
    ("addi", {"rd": 1, "rs1": 0, "imm": 0}),    # a = 0
    ("addi", {"rd": 2, "rs1": 0, "imm": 1}),    # b = 1
    ("addi", {"rd": 3, "rs1": 0, "imm": 10}),   # n = 10
    ("beq", {"rs1": 3, "rs2": 0, "imm": 24}),   # while n != 0:
    ("add", {"rd": 4, "rs1": 1, "rs2": 2}),     #   t = a + b
    ("addi", {"rd": 1, "rs1": 2, "imm": 0}),    #   a = b
    ("addi", {"rd": 2, "rs1": 4, "imm": 0}),    #   b = t
    ("addi", {"rd": 3, "rs1": 3, "imm": -1}),   #   n -= 1
    ("jal", {"rd": 0, "imm": -20}),
    ("sw", {"rs1": 0, "rs2": 1, "imm": 256}),   # mem[64] = a
    ("jal", {"rd": 0, "imm": 0}),               # halt
]


def main():
    print(f"=== synthesizing decoder control for {len(SUBSET)} "
          "instructions ===")
    problem = riscv.build_problem("RV32I", "single_cycle",
                                  instructions=SUBSET)
    result = synthesize(problem, timeout=900)
    print(result.summary())

    print("\n=== generated control (PyRTL style, Figure 7) ===")
    print(generate_pyrtl_control(problem, result))

    print("=== running fib(10) on the completed core ===")
    words = assemble(PROGRAM)
    core = CompiledSimulator(result.completed_design,
                             memory_init={"i_mem": dict(words)},
                             register_init={"pc": 0})
    iss = GoldenISS(memory=dict(words), pc=0)
    for cycle in range(120):
        iss.step()
        core.step({})
        assert core.peek("pc") == iss.pc, f"pc diverged at cycle {cycle}"
        if iss.pc == 40:  # halt loop
            break
    fib = core.peek_memory("rf", 1)
    print(f"  core computed fib(10) = {fib} in {core.cycle} cycles")
    assert fib == 55
    assert core.peek_memory("d_mem", 64) == 55
    print("  matches the golden ISS at every cycle.")


if __name__ == "__main__":
    main()
