#!/usr/bin/env python3
"""Agile design iteration: the paper's core motivation (Sections 1 and 4.1).

A designer iterates along both axes without ever writing control logic:

1. **Change the architecture**: start from a small RV32I subset, then add
   Zbkb bit-manipulation instructions to the specification.  The datapath
   sketch already contains the functional units, so re-running synthesis
   regenerates the decoder — no control is written by hand.
2. **Change the microarchitecture**: switch the same specification from the
   single-cycle core to the two-stage pipeline.  Only the datapath sketch
   and the abstraction function (read/write timesteps) change.

Run: ``python examples/design_iteration.py``
"""

import time

from repro.designs import riscv
from repro.synthesis import synthesize, verify_design

BASE = ["lui", "jal", "lw", "sw", "addi", "add", "xor", "and"]
CRYPTO_EXTENSION = ["rol", "rori", "andn", "xnor", "rev8", "pack"]


def synthesize_and_report(label, variant, microarch, instructions):
    problem = riscv.build_problem(variant, microarch,
                                  instructions=instructions)
    started = time.monotonic()
    result = synthesize(problem, timeout=900)
    elapsed = time.monotonic() - started
    print(f"  {label}: {len(instructions)} instructions, "
          f"{elapsed:.1f}s, {len(result.control_stmts)} generated "
          "control statements")
    return problem, result


def main():
    print("=== iteration 1: base subset on the single-cycle core ===")
    synthesize_and_report("base/single-cycle", "RV32I", "single_cycle", BASE)

    print("\n=== iteration 2: architecture change (+Zbkb instructions) ===")
    print("  (same sketch; only the specification grows)")
    problem, result = synthesize_and_report(
        "base+Zbkb/single-cycle", "RV32I+Zbkb", "single_cycle",
        BASE + CRYPTO_EXTENSION,
    )
    verdict = verify_design(result.completed_design, problem.spec,
                            problem.alpha,
                            instructions=["rol", "rev8", "pack"])
    assert verdict.ok, verdict.summary()
    print("  new instructions verified:",
          ", ".join(v.instruction_name for v in verdict.verdicts))

    print("\n=== iteration 3: microarchitecture change (two-stage pipe) ===")
    print("  (same specification; new sketch + abstraction function)")
    problem, result = synthesize_and_report(
        "base+Zbkb/two-stage", "RV32I+Zbkb", "two_stage",
        BASE + CRYPTO_EXTENSION,
    )
    verdict = verify_design(result.completed_design, problem.spec,
                            problem.alpha, instructions=["add", "rol"])
    assert verdict.ok, verdict.summary()
    print("  pipelined core verified.")
    print("\nAll three design points synthesized from the same flow — the "
          "designer never wrote a line of control logic.")


if __name__ == "__main__":
    main()
