#!/usr/bin/env python3
"""Developer feedback for a broken sketch (the paper's Section 5.3 wish).

"If the datapath sketch is incorrect with respect to the ILA, the tool will
fail to find a satisfying solution ... Future work can extend the tool to
indicate which part of the datapath is incorrect."  This example shows that
extension: a designer forgets the subtract unit, synthesis fails, and the
diagnosis pinpoints the unimplementable architectural update.

Run: ``python examples/diagnose_sketch.py``
"""

from repro import hdl
from repro.designs import alu_machine
from repro.synthesis import (
    SynthesisFailure,
    SynthesisProblem,
    diagnose_instruction,
    synthesize,
)


def broken_sketch():
    """The three-stage ALU pipeline, but the ALU lost its subtractor."""
    with hdl.Module("alu_no_sub") as module:
        hdl.Input(2, "op")
        dest = hdl.Input(2, "dest")
        src1 = hdl.Input(2, "src1")
        src2 = hdl.Input(2, "src2")
        regfile = hdl.MemBlock(2, 8, "regfile")
        alu_op = hdl.Hole(2, "alu_op", deps=["op"])
        wb_en = hdl.Hole(1, "wb_en", deps=["op"])
        rs1 = regfile.read(src1)
        rs2 = regfile.read(src2)
        p_rs1, p_rs2 = hdl.Register(8, "p_rs1"), hdl.Register(8, "p_rs2")
        p_dest = hdl.Register(2, "p_dest")
        p_aluop = hdl.Register(2, "p_aluop")
        p_wben = hdl.Register(1, "p_wben", init=0)
        p_rs1.next <<= rs1
        p_rs2.next <<= rs2
        p_dest.next <<= dest
        p_aluop.next <<= alu_op
        p_wben.next <<= wb_en
        alu_out = hdl.mux(
            p_aluop,
            p_rs1 ^ p_rs2,
            p_rs1 + p_rs2,
            p_rs1 + p_rs2,  # <- the subtractor is missing!
            p_rs1 & p_rs2,
        )
        p_res = hdl.Register(8, "p_res")
        p_dest2 = hdl.Register(2, "p_dest2")
        p_wben2 = hdl.Register(1, "p_wben2", init=0)
        p_res.next <<= alu_out
        p_dest2.next <<= p_dest
        p_wben2.next <<= p_wben
        regfile.write(p_dest2, p_res, enable=p_wben2)
    return module.to_oyster()


def main():
    problem = SynthesisProblem(
        sketch=broken_sketch(),
        spec=alu_machine.build_spec(),
        alpha=alu_machine.build_alpha(),
        name="broken_alu",
    )
    print("=== synthesizing against the full ALU spec ===")
    try:
        synthesize(problem, timeout=300)
        raise AssertionError("expected synthesis to fail")
    except SynthesisFailure as error:
        print(f"  synthesis failed (as expected): {error}\n")

    print("=== diagnosing each instruction ===")
    for instruction in problem.spec.instructions:
        diagnosis = diagnose_instruction(problem, instruction)
        print(diagnosis.summary())
    print("\nThe SUB instruction's register-file update is flagged as "
          "missing hardware — the designer now knows exactly which "
          "datapath unit to add.")


if __name__ == "__main__":
    main()
