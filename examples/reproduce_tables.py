#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables from the command line.

Usage::

    python examples/reproduce_tables.py --table1 [--full]
    python examples/reproduce_tables.py --table2 [--full]
    python examples/reproduce_tables.py --constant-time [--full]

``--full`` runs the paper-scale configurations (full instruction sets, the
4..32 length sweep, a 900s monolithic budget); the default quick mode uses
representative subsets and finishes in a few minutes.
"""

import argparse

from repro.eval import (
    format_table,
    run_constant_time,
    run_table1,
    run_table2,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table1", action="store_true")
    parser.add_argument("--table2", action="store_true")
    parser.add_argument("--constant-time", action="store_true")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale configurations")
    parser.add_argument("--rows", nargs="*", default=None,
                        help="table 1 row ids to run (default: all)")
    arguments = parser.parse_args()
    quick = not arguments.full
    ran_any = False

    if arguments.table1:
        ran_any = True
        rows = run_table1(
            row_ids=arguments.rows, quick=quick,
            monolithic_timeout=900 if arguments.full else 120,
            progress=lambda row: print(
                f"  {row.design} {row.variant} [{row.mode}]: "
                f"{row.time_seconds:.1f}s ({row.status})"
            ),
        )
        print()
        print(format_table(rows, title="Table 1: synthesis times"))
    if arguments.table2:
        ran_any = True
        rows = run_table2(
            quick=quick,
            progress=lambda row: print(f"  {row.variant}: done"),
        )
        print()
        print(format_table(rows, title="Table 2: control logic size"))
    if arguments.constant_time:
        ran_any = True
        lengths = tuple(range(4, 33)) if arguments.full else (4, 12, 21, 32)
        rows = run_constant_time(lengths=lengths)
        print(format_table(rows, title="Constant-time study (Section 5.2)"))
    if not ran_any:
        parser.error("choose at least one of --table1/--table2/"
                     "--constant-time")


if __name__ == "__main__":
    main()
