"""Table 1: control logic synthesis time per design variant.

Each benchmark regenerates one row of the paper's Table 1: the wall-clock
time of control logic synthesis (per-instruction with the control union, or
monolithic for the † rows).  The monolithic RV32I row reproduces the paper's
Timeout entry: it is bounded by a budget and reports whether it hit it.

Run ``REPRO_FULL_EVAL=1 pytest benchmarks/bench_table1.py --benchmark-only``
for the full-ISA rows (the numbers recorded in EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import full_eval
from repro.eval.table1 import TABLE1_CONFIGS, run_row

_PER_INSTRUCTION_ROWS = [c[0] for c in TABLE1_CONFIGS
                         if c[3] == "per_instruction"]


@pytest.mark.parametrize("row_id", _PER_INSTRUCTION_ROWS)
def test_table1_row(benchmark, row_id):
    quick = not full_eval()
    row = benchmark.pedantic(
        lambda: run_row(row_id, quick=quick, timeout=3600),
        rounds=1, iterations=1,
    )
    assert row.status == "ok", row
    benchmark.extra_info.update(
        design=row.design, variant=row.variant,
        sketch_size=row.sketch_size, instructions=row.instructions,
        synthesis_seconds=round(row.time_seconds, 2),
    )


def test_table1_aes_monolithic(benchmark):
    """The AES † row: monolithic synthesis completes but is slower."""
    row = benchmark.pedantic(
        lambda: run_row("aes_mono", monolithic_timeout=1200),
        rounds=1, iterations=1,
    )
    assert row.status == "ok", row
    benchmark.extra_info.update(synthesis_seconds=round(row.time_seconds, 2))


def test_table1_rv32i_monolithic_times_out(benchmark):
    """The RV32I † row: Equation (1) over the whole ISA exceeds any budget.

    The paper ran 3 hours before declaring Timeout; we bound the budget at
    120s (quick) / 900s (full) — the row's claim is only that monolithic
    synthesis is intractable where per-instruction synthesis takes seconds.
    """
    budget = 900 if full_eval() else 120
    quick = not full_eval()
    row = benchmark.pedantic(
        lambda: run_row("sc_rv32i_mono", quick=quick,
                        monolithic_timeout=budget),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(status=row.status, budget=budget)
    if full_eval():
        assert row.status == "timeout", row
