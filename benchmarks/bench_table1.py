"""Table 1: control logic synthesis time per design variant.

Each benchmark regenerates one row of the paper's Table 1: the wall-clock
time of control logic synthesis (per-instruction with the control union, or
monolithic for the † rows).  The monolithic RV32I row reproduces the paper's
Timeout entry: it is bounded by a budget and reports whether it hit it.

Every case also lands in ``BENCH_table1.json`` (via the ``bench_record``
fixture) with its deterministic encode counters, and the
``*_pipeline_comparison`` benches run the RV32I rows under *both*
pipelines to measure the incremental pipeline's encode savings — the
single-cycle row asserts the >= 2x reduction in AIG nodes + Tseitin
clauses that motivates the pipeline.

Run ``REPRO_FULL_EVAL=1 pytest benchmarks/bench_table1.py --benchmark-only``
for the full-ISA rows (the numbers recorded in EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import full_eval
from repro.designs import riscv
from repro.eval.table1 import TABLE1_CONFIGS, run_row
from repro.smt import counters as _counters
from repro.smt.backends import SolverConfig
from repro.synthesis import synthesize

_PER_INSTRUCTION_ROWS = [c[0] for c in TABLE1_CONFIGS
                         if c[3] == "per_instruction"]


def _record_row(record, case, row):
    record(
        case,
        design=row.design,
        variant=row.variant,
        mode=row.mode,
        backend=row.backend,
        pipeline=row.pipeline,
        status=row.status,
        instructions=row.instructions,
        sketch_size=row.sketch_size,
        wall_time_seconds=round(row.time_seconds, 3),
        iterations=row.iterations,
        solver_instances=row.solver_instances,
        aig_nodes=row.aig_nodes,
        tseitin_clauses=row.tseitin_clauses,
        trace_cache_hits=row.trace_cache_hits,
        trace_cache_misses=row.trace_cache_misses,
    )


@pytest.mark.parametrize("row_id", _PER_INSTRUCTION_ROWS)
def test_table1_row(benchmark, bench_record, row_id):
    quick = not full_eval()
    row = benchmark.pedantic(
        lambda: run_row(row_id, quick=quick, timeout=3600),
        rounds=1, iterations=1,
    )
    assert row.status == "ok", row
    benchmark.extra_info.update(
        design=row.design, variant=row.variant,
        sketch_size=row.sketch_size, instructions=row.instructions,
        synthesis_seconds=round(row.time_seconds, 2),
        pipeline=row.pipeline,
    )
    _record_row(bench_record, row_id, row)


@pytest.mark.parametrize("row_id", ["sc_rv32i", "ts_rv32i"])
def test_table1_pipeline_comparison(benchmark, bench_record, row_id):
    """Fresh vs incremental on the RV32I cores, in encode units.

    Wall time is recorded but the assertions are on counters: the solver
    stack is deterministic, so AIG nodes and Tseitin clauses reproduce
    exactly across hosts where seconds do not.
    """
    quick = not full_eval()

    def both():
        rows = {}
        for pipeline in ("fresh", "incremental"):
            rows[pipeline] = run_row(row_id, quick=quick, timeout=3600,
                                     pipeline=pipeline)
        return rows

    rows = benchmark.pedantic(both, rounds=1, iterations=1)
    fresh, incr = rows["fresh"], rows["incremental"]
    assert fresh.status == "ok", fresh
    assert incr.status == "ok", incr

    fresh_encode = fresh.aig_nodes + fresh.tseitin_clauses
    incr_encode = incr.aig_nodes + incr.tseitin_clauses
    ratio = fresh_encode / incr_encode
    benchmark.extra_info.update(
        fresh_seconds=round(fresh.time_seconds, 2),
        incremental_seconds=round(incr.time_seconds, 2),
        encode_ratio=round(ratio, 2),
    )
    for pipeline, row in rows.items():
        _record_row(bench_record, f"{row_id}[{pipeline}]", row)
    bench_record(f"{row_id}[encode_ratio]", encode_ratio=round(ratio, 3))

    # Incremental must always be the cheaper encoder; the single-cycle
    # core is the issue's acceptance case and must clear 2x.
    assert incr.aig_nodes < fresh.aig_nodes
    assert incr.tseitin_clauses < fresh.tseitin_clauses
    if row_id == "sc_rv32i":
        assert ratio >= 2.0, f"encode ratio {ratio:.2f} below 2x"


def test_pipeline_wall_ratio_riscv_subset(benchmark, bench_record):
    """Incremental solving must actually pay: wall-time gate.

    Same workload as ``ablation_riscv`` (the RV32I subset), same fold
    settings on both arms (``partial_eval`` defaults on) — the only
    difference is the pipeline.  The incremental arm must be no slower
    than fresh, its trail-reuse counters must be nonzero (the CDCL
    assumption hot path is really engaged, not just configured), and
    both arms must synthesize bit-identical control logic.  The ratio
    lands in BENCH_table1.json as ``riscv_subset[wall_ratio]``, where
    ``scripts/bench_report.py`` gates on it.
    """
    budget = 900 if full_eval() else 120

    def both():
        out = {}
        for pipeline in ("fresh", "incremental"):
            problem = riscv.build_problem(
                "RV32I", "single_cycle",
                instructions=["add", "addi", "lui", "and"],
            )
            before = _counters.snapshot()
            result = synthesize(problem, timeout=budget,
                                config=SolverConfig(pipeline=pipeline))
            out[pipeline] = (result, _counters.delta_since(before))
        return out

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    (fresh, _), (incr, incr_counters) = (results["fresh"],
                                         results["incremental"])
    ratio = incr.elapsed / fresh.elapsed
    benchmark.extra_info.update(
        fresh_seconds=round(fresh.elapsed, 2),
        incremental_seconds=round(incr.elapsed, 2),
        wall_ratio=round(ratio, 3),
    )
    for pipeline, (result, _) in results.items():
        bench_record(
            f"riscv_subset[{pipeline}]",
            pipeline=pipeline,
            status="ok",
            wall_time_seconds=round(result.elapsed, 3),
        )
    bench_record(
        "riscv_subset[wall_ratio]",
        wall_ratio=round(ratio, 3),
        trail_reuse_hits=incr_counters["sat_trail_reuse_hits"],
        trail_reuse_levels_saved=incr_counters[
            "sat_trail_reuse_levels_saved"],
    )

    for solution in fresh.per_instruction:
        assert incr.hole_values_for(solution.instruction_name) \
            == solution.hole_values, solution.instruction_name
    assert incr_counters["sat_trail_reuse_hits"] > 0
    assert ratio <= 1.0, (
        f"incremental pipeline slower than fresh: ratio {ratio:.3f}"
    )


def test_table1_aes_monolithic(benchmark, bench_record):
    """The AES † row: monolithic synthesis completes but is slower."""
    row = benchmark.pedantic(
        lambda: run_row("aes_mono", monolithic_timeout=1200),
        rounds=1, iterations=1,
    )
    assert row.status == "ok", row
    benchmark.extra_info.update(synthesis_seconds=round(row.time_seconds, 2))
    _record_row(bench_record, "aes_mono", row)


def test_table1_rv32i_monolithic_times_out(benchmark, bench_record):
    """The RV32I † row: Equation (1) over the whole ISA exceeds any budget.

    The paper ran 3 hours before declaring Timeout; we bound the budget at
    120s (quick) / 900s (full) — the row's claim is only that monolithic
    synthesis is intractable where per-instruction synthesis takes seconds.
    """
    budget = 900 if full_eval() else 120
    quick = not full_eval()
    row = benchmark.pedantic(
        lambda: run_row("sc_rv32i_mono", quick=quick,
                        monolithic_timeout=budget),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(status=row.status, budget=budget)
    _record_row(bench_record, "sc_rv32i_mono", row)
    if full_eval():
        assert row.status == "timeout", row
