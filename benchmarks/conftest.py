"""Shared benchmark configuration.

Set ``REPRO_FULL_EVAL=1`` to run the paper-scale experiments (full
instruction sets; minutes per row).  The default "quick" configuration uses
representative instruction subsets so that a complete
``pytest benchmarks/ --benchmark-only`` pass finishes in a few minutes while
exercising exactly the same pipelines.
"""

import os

import pytest


def full_eval():
    return os.environ.get("REPRO_FULL_EVAL", "") == "1"


@pytest.fixture(scope="session")
def quick_mode():
    return not full_eval()
