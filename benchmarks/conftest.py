"""Shared benchmark configuration.

Set ``REPRO_FULL_EVAL=1`` to run the paper-scale experiments (full
instruction sets; minutes per row).  The default "quick" configuration uses
representative instruction subsets so that a complete
``pytest benchmarks/ --benchmark-only`` pass finishes in a few minutes while
exercising exactly the same pipelines.

Benchmarks record their headline numbers (wall time plus the deterministic
encode counters) through the ``bench_record`` fixture; at session end the
accumulated cases are merged into ``BENCH_table1.json`` at the repo root.
Merging — read, update, write — means separate pytest invocations (one
bench file at a time, or a rerun of a single case) accumulate into one
report instead of clobbering each other; ``scripts/bench_report.py`` diffs
two such files.
"""

import json
import os
from pathlib import Path

import pytest

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_table1.json"

#: cases recorded during this pytest session: name -> fields dict
_CASES = {}


def full_eval():
    return os.environ.get("REPRO_FULL_EVAL", "") == "1"


@pytest.fixture(scope="session")
def quick_mode():
    return not full_eval()


@pytest.fixture(scope="session")
def bench_record():
    """``record(name, **fields)``: stage one case for BENCH_table1.json."""

    def record(name, **fields):
        _CASES[name] = fields

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _CASES:
        return
    report = {"schema": "bench_table1/v1", "quick": not full_eval(),
              "cases": {}}
    if BENCH_JSON.exists():
        try:
            previous = json.loads(BENCH_JSON.read_text())
            report["cases"] = previous.get("cases", {})
        except (OSError, ValueError):
            pass  # unreadable previous report: start clean
    report["cases"].update(_CASES)
    BENCH_JSON.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
