"""Ablation: control minimization (the Section 5.3 optimality extension).

Measures the size of the generated control — as Figure 7-style PyRTL lines
and as union if-tree groups — with and without the don't-care merging
post-pass, on a single-cycle RISC-V subset.
"""

import pytest

from benchmarks.conftest import full_eval
from repro.designs import riscv
from repro.oyster.printer import print_expr
from repro.synthesis import minimize_solutions, synthesize
from repro.synthesis.union import control_union

_SUBSET = ["lui", "jal", "beq", "lw", "sw", "addi", "srai", "add",
           "sltu", "and"]


def _union_size(problem, solutions):
    """Characters of the pretty-printed control union (if-tree size)."""
    _, stmts = control_union(problem, solutions)
    return sum(len(print_expr(stmt.expr)) + len(stmt.target) + 4
               for stmt in stmts), len(stmts)


def test_minimization_shrinks_generated_control(benchmark):
    problem = riscv.build_problem(
        "RV32I", "single_cycle",
        instructions=None if full_eval() else _SUBSET,
    )
    result = synthesize(problem, timeout=3600)
    chars_before, stmts_before = _union_size(
        problem, result.per_instruction
    )

    def run():
        return minimize_solutions(problem, result.per_instruction)

    minimized, report = benchmark.pedantic(run, rounds=1, iterations=1)
    chars_after, stmts_after = _union_size(problem, minimized)
    groups_before = sum(report.distinct_before.values())
    groups_after = sum(report.distinct_after.values())
    assert groups_after <= groups_before
    assert chars_after <= chars_before
    benchmark.extra_info.update(
        union_chars_before=chars_before, union_chars_after=chars_after,
        groups_before=groups_before, groups_after=groups_after,
        merged=report.merged, checks=report.checks,
    )
