"""Ablation: per-instruction + control union vs monolithic Equation (1).

Measures synthesis time as the instruction count grows, in both modes, on
the single-cycle core.  The paper's Table 1 shows only the endpoints (6.6s
vs Timeout); this sweep exposes the scaling curve that motivates the
Section 3.3.1 optimization.
"""

import pytest

from benchmarks.conftest import full_eval
from repro.designs import riscv
from repro.synthesis import SynthesisTimeout, synthesize

_ORDERED = ["add", "sub", "and", "or", "xor", "addi", "lui", "sltu"]


def _subset(count):
    return _ORDERED[:count]


@pytest.mark.parametrize("count", [2, 4, 6])
@pytest.mark.parametrize("mode", ["per_instruction", "monolithic"])
def test_union_scaling(benchmark, mode, count):
    problem = riscv.build_problem(
        "RV32I", "single_cycle", instructions=_subset(count)
    )
    budget = 900 if full_eval() else 60

    def run():
        try:
            result = synthesize(problem, mode=mode, timeout=budget)
            return ("ok", result.elapsed)
        except SynthesisTimeout:
            return ("timeout", budget)

    status, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        mode=mode, instructions=count, status=status,
        seconds=round(elapsed, 2),
    )
