"""The Section 5.2 constant-time study.

SHA-256 on the bespoke core: the cycle count must be identical for every
input length (4..32 in the paper; a subset in quick mode), and the core with
generated control must match the hand-written-reference core cycle-for-cycle
with identical digests.
"""

import pytest

from benchmarks.conftest import full_eval
from repro.eval.constant_time import build_cores, run_constant_time


@pytest.fixture(scope="module")
def cores():
    return build_cores(timeout=3600)


def test_constant_time_sweep(benchmark, cores):
    lengths = tuple(range(4, 33)) if full_eval() else (4, 12, 21, 32)
    rows = benchmark.pedantic(
        lambda: run_constant_time(lengths=lengths, cores=cores),
        rounds=1, iterations=1,
    )
    generated_counts = {row.generated_cycles for row in rows}
    reference_counts = {row.reference_cycles for row in rows}
    assert len(generated_counts) == 1, "cycle count varies with length!"
    assert len(reference_counts) == 1
    assert generated_counts == reference_counts
    assert all(row.digest_ok and row.reference_digest_ok for row in rows)
    benchmark.extra_info.update(
        lengths=list(lengths),
        cycles=rows[0].generated_cycles,
    )
