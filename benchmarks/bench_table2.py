"""Table 2: generated vs hand-written control size (LoC and gate counts).

Regenerates the paper's comparison for the single-cycle core variants:
control-logic line counts (compact hand-written decoder vs the Figure 7
style rendering of the synthesized control), and gate counts of the
completed cores before/after logic optimization.
"""

import pytest

from benchmarks.conftest import full_eval
from repro.eval.table2 import run_variant, _QUICK_SUBSETS


@pytest.mark.parametrize("variant", ["RV32I", "RV32I+Zbkb", "RV32I+Zbkc"])
def test_table2_variant(benchmark, variant):
    quick = not full_eval()
    instructions = _QUICK_SUBSETS[variant] if quick else None
    row = benchmark.pedantic(
        lambda: run_variant(variant, quick=quick, timeout=3600,
                            instructions=instructions),
        rounds=1, iterations=1,
    )
    # The paper's shape: generated control is markedly larger as source
    # text, and the completed cores are within ~10-15% in gates, converging
    # after optimization.
    assert row.generated_loc > row.reference_loc
    assert row.generated_gates > 0 and row.reference_gates > 0
    assert row.optimized_gates <= row.generated_gates
    benchmark.extra_info.update(
        reference_loc=row.reference_loc,
        generated_loc=row.generated_loc,
        reference_gates=row.reference_gates,
        generated_gates=row.generated_gates,
        optimized_gates=row.optimized_gates,
        optimized_reference_gates=row.optimized_reference_gates,
    )
