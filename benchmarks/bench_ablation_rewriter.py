"""Ablation: partial evaluation in the CEGIS verify step.

The reproduction's solver pipeline stays tractable because the verify query
substitutes candidate hole constants into the trace, letting the rewriting
constructors fold the unused datapath away before bit-blasting (the role
Rosette's symbolic evaluation plays in the paper).  This ablation disables
the substitution — hole values become equality constraints over the full
symbolic datapath — and measures the slowdown on the ALU machine and a
RISC-V subset.
"""

import pytest

from benchmarks.conftest import full_eval
from repro.designs import alu_machine, riscv
from repro.synthesis import SynthesisTimeout, synthesize


@pytest.mark.parametrize("partial_eval", [True, False],
                         ids=["fold", "nofold"])
def test_alu_machine_partial_eval(benchmark, partial_eval):
    problem = alu_machine.build_problem()
    budget = 600 if full_eval() else 60

    def run():
        try:
            result = synthesize(problem, timeout=budget,
                                partial_eval=partial_eval)
            return ("ok", result.elapsed)
        except SynthesisTimeout:
            return ("timeout", budget)

    status, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(status=status, seconds=round(elapsed, 2))


@pytest.mark.parametrize("partial_eval", [True, False],
                         ids=["fold", "nofold"])
def test_riscv_subset_partial_eval(benchmark, partial_eval):
    problem = riscv.build_problem(
        "RV32I", "single_cycle",
        instructions=["add", "addi", "lui", "and"],
    )
    budget = 900 if full_eval() else 60

    def run():
        try:
            result = synthesize(problem, timeout=budget,
                                partial_eval=partial_eval)
            return ("ok", result.elapsed)
        except SynthesisTimeout:
            return ("timeout", budget)

    status, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(status=status, seconds=round(elapsed, 2))
