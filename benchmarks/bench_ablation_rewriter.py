"""Ablation: partial evaluation in the CEGIS verify step.

The reproduction's solver pipeline stays tractable because the verify query
substitutes candidate hole constants into the trace, letting the rewriting
constructors fold the unused datapath away before bit-blasting (the role
Rosette's symbolic evaluation plays in the paper).  This ablation disables
the substitution — hole values become equality constraints over the full
symbolic datapath — and measures the slowdown on the ALU machine and a
RISC-V subset.  The nofold arm always runs the fresh pipeline
(``resolve_pipeline`` maps ``partial_eval=False`` there), so it stays the
encode-cost baseline for BENCH_table1.json.
"""

import pytest

from benchmarks.conftest import full_eval
from repro.designs import alu_machine, riscv
from repro.smt import counters as _counters
from repro.synthesis import SynthesisTimeout, synthesize


def _run_case(benchmark, bench_record, case, problem, partial_eval, budget):
    def run():
        before = _counters.snapshot()
        try:
            result = synthesize(problem, timeout=budget,
                                partial_eval=partial_eval)
            outcome = ("ok", result.elapsed, result.stats["pipeline"])
        except SynthesisTimeout:
            outcome = ("timeout", budget, "")
        return outcome + (_counters.delta_since(before),)

    status, elapsed, pipeline, encode = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info.update(status=status, seconds=round(elapsed, 2))
    bench_record(
        case,
        status=status,
        pipeline=pipeline,
        partial_eval=partial_eval,
        wall_time_seconds=round(elapsed, 3),
        solver_instances=encode["solver_instances"],
        aig_nodes=encode["aig_nodes"],
        tseitin_clauses=encode["tseitin_clauses"],
        trace_cache_hits=encode["trace_cache_hits"],
        trace_cache_misses=encode["trace_cache_misses"],
    )


@pytest.mark.parametrize("partial_eval", [True, False],
                         ids=["fold", "nofold"])
def test_alu_machine_partial_eval(benchmark, bench_record, partial_eval):
    problem = alu_machine.build_problem()
    budget = 600 if full_eval() else 60
    case = f"ablation_alu[{'fold' if partial_eval else 'nofold'}]"
    _run_case(benchmark, bench_record, case, problem, partial_eval, budget)


@pytest.mark.parametrize("partial_eval", [True, False],
                         ids=["fold", "nofold"])
def test_riscv_subset_partial_eval(benchmark, bench_record, partial_eval):
    problem = riscv.build_problem(
        "RV32I", "single_cycle",
        instructions=["add", "addi", "lui", "and"],
    )
    budget = 900 if full_eval() else 60
    case = f"ablation_riscv[{'fold' if partial_eval else 'nofold'}]"
    _run_case(benchmark, bench_record, case, problem, partial_eval, budget)
