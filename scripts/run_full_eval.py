#!/usr/bin/env python3
"""Run the paper-scale evaluation and record results as JSON + text.

Writes ``results/full_eval.json`` and prints the tables; EXPERIMENTS.md is
written from this output.  Expected runtime: tens of minutes.

An interrupted Table 1 run (Ctrl-C, budget exhaustion) leaves a resume
handle; pass it back with ``--resume handle.json`` and the already-solved
instructions are reused verbatim instead of being re-synthesized.
"""

import argparse
import dataclasses
import json
import os
import time

from repro.eval import (
    format_table,
    run_constant_time,
    run_table1,
    run_table2,
)
from repro.synthesis import MalformedResumeHandle, load_resume_handle


def _load_resume(path):
    """Load a resume handle and report what it lets us skip."""
    try:
        partial = load_resume_handle(path)
    except MalformedResumeHandle as exc:
        raise SystemExit(
            f"error: cannot resume from {path}: {exc} "
            f"(reason: {exc.reason})"
        ) from exc
    solved = [s.instruction_name for s in partial.completed]
    print(
        f"resuming {partial.problem_name!r} ({partial.mode}) from {path}: "
        f"previous run stopped on {partial.reason!r}", flush=True,
    )
    if solved:
        print(
            f"  skipping {len(solved)} already-solved instruction(s): "
            + ", ".join(solved), flush=True,
        )
    print(
        f"  {len(partial.pending)} instruction(s) still pending: "
        + (", ".join(partial.pending) or "(none)"), flush=True,
    )
    return partial


def main():
    parser = argparse.ArgumentParser(
        description="Run the full paper evaluation (Tables 1/2, "
        "constant-time study)."
    )
    parser.add_argument(
        "tables", nargs="*", choices=["table1", "table2", "ct"],
        help="restrict to the named studies (default: all)",
    )
    parser.add_argument(
        "--resume", metavar="HANDLE.json", default=None,
        help="a serialized PartialSynthesisResult from an interrupted "
        "run; matching Table 1 rows reuse its solved instructions",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record an obs/v1 JSONL trace of the whole evaluation to "
        "PATH (analyze with scripts/trace_report.py)",
    )
    parser.add_argument(
        "--backend", metavar="NAME", default=None,
        help="solver backend for every Table 1 row (a name registered "
        "with repro.smt.backends, e.g. inprocess, isolated, "
        "subprocess-dimacs; default: $REPRO_BACKEND or inprocess); "
        "the rows record which backend ran",
    )
    args = parser.parse_args()
    if args.backend is not None:
        from repro.smt.backends import available_backends

        if args.backend not in available_backends():
            parser.error(
                f"unknown backend {args.backend!r}; registered: "
                + ", ".join(available_backends())
            )
    only = set(args.tables)
    resume_handle = _load_resume(args.resume) if args.resume else None

    tracer = None
    if args.trace:
        from repro.obs import Tracer, install

        tracer = Tracer(args.trace)
        install(tracer)
        print(f"tracing to {args.trace} (run {tracer.run_id})", flush=True)

    os.makedirs("results", exist_ok=True)
    results = {}
    if os.path.exists("results/full_eval.json"):
        with open("results/full_eval.json") as handle:
            results = json.load(handle)

    def save():
        with open("results/full_eval.json", "w") as handle:
            json.dump(results, handle, indent=2)

    if not only or "table1" in only:
        print("=== Table 1 (full) ===", flush=True)
        rows = run_table1(
            quick=False, monolithic_timeout=300,
            resume_from=resume_handle, backend=args.backend,
            progress=lambda row: print(
                f"  {row.row_id}: {row.time_seconds:.1f}s ({row.status})"
                + (f", reused {row.resumed_instructions}"
                   if row.resumed_instructions else ""),
                flush=True,
            ),
        )
        results["table1"] = [dataclasses.asdict(row) for row in rows]
        print(format_table(rows))
        save()

    if not only or "table2" in only:
        print("=== Table 2 (full) ===", flush=True)
        rows = run_table2(
            quick=False,
            progress=lambda row: print(f"  {row.variant}: done", flush=True),
        )
        results["table2"] = [dataclasses.asdict(row) for row in rows]
        print(format_table(rows))
        save()

    if not only or "ct" in only:
        print("=== Constant-time study (full 4..32) ===", flush=True)
        started = time.monotonic()
        rows = run_constant_time(lengths=tuple(range(4, 33)))
        results["constant_time"] = [dataclasses.asdict(row) for row in rows]
        results["constant_time_seconds"] = time.monotonic() - started
        print(format_table(rows))
        save()
    if tracer is not None:
        from repro.obs import clear

        clear()
        tracer.close()
        print(f"trace written to {tracer.path}")
    print("saved results/full_eval.json")


if __name__ == "__main__":
    main()
