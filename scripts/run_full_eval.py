#!/usr/bin/env python3
"""Run the paper-scale evaluation and record results as JSON + text.

Writes ``results/full_eval.json`` and prints the tables; EXPERIMENTS.md is
written from this output.  Expected runtime: tens of minutes.
"""

import dataclasses
import json
import os
import sys
import time

from repro.eval import (
    format_table,
    run_constant_time,
    run_table1,
    run_table2,
)


def main():
    only = set(sys.argv[1:])  # optional: table1 table2 ct
    os.makedirs("results", exist_ok=True)
    results = {}
    if os.path.exists("results/full_eval.json"):
        with open("results/full_eval.json") as handle:
            results = json.load(handle)

    def save():
        with open("results/full_eval.json", "w") as handle:
            json.dump(results, handle, indent=2)

    if not only or "table1" in only:
        print("=== Table 1 (full) ===", flush=True)
        rows = run_table1(
            quick=False, monolithic_timeout=300,
            progress=lambda row: print(
                f"  {row.row_id}: {row.time_seconds:.1f}s ({row.status})",
                flush=True,
            ),
        )
        results["table1"] = [dataclasses.asdict(row) for row in rows]
        print(format_table(rows))
        save()

    if not only or "table2" in only:
        print("=== Table 2 (full) ===", flush=True)
        rows = run_table2(
            quick=False,
            progress=lambda row: print(f"  {row.variant}: done", flush=True),
        )
        results["table2"] = [dataclasses.asdict(row) for row in rows]
        print(format_table(rows))
        save()

    if not only or "ct" in only:
        print("=== Constant-time study (full 4..32) ===", flush=True)
        started = time.monotonic()
        rows = run_constant_time(lengths=tuple(range(4, 33)))
        results["constant_time"] = [dataclasses.asdict(row) for row in rows]
        results["constant_time_seconds"] = time.monotonic() - started
        print(format_table(rows))
        save()
    print("saved results/full_eval.json")


if __name__ == "__main__":
    main()
