#!/usr/bin/env python
"""Summarize an obs/v1 JSONL trace: flame tree, top queries, exact totals.

Usage::

    python scripts/trace_report.py TRACE.jsonl
    python scripts/trace_report.py TRACE.jsonl --top 20
    python scripts/trace_report.py TRACE.jsonl --validate-only
    python scripts/trace_report.py TRACE.jsonl --assert-attributed
    python scripts/trace_report.py TRACE.jsonl --job JOB-ID

Produces a flamegraph-style per-instruction/per-phase text summary, the
top-K most expensive solver queries with full provenance (result,
conflicts, clause/variable counts, owning span chain), the exact
iteration and encode-counter totals re-derived from the trace, and the
counterexample waveform paths recorded by failed verify queries.

``--validate-only`` just checks the trace against the schema (exit 1 on
violation) — this is what the CI perf-smoke lane gates on.  Traces from
runs that died mid-span validate fine; the report marks them truncated.

``--assert-attributed`` additionally fails (exit 1) if any ``solver.check``
event has no owning span — the CI portfolio lane gates on this so racing,
hedging and cancellation can never produce an unattributed query.

``--job JOB-ID`` slices the trace to one job's propagated trace context
(resolved through the daemon's ``service.job`` span, or a raw trace id)
and reports on the slice alone — the single-trace-id view of one
submission across daemon, runner threads and worker subprocesses.
Combined with ``--assert-attributed``, the attribution gate applies to
the job's slice.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.obs.report import (  # noqa: E402
    job_trace_id,
    render_job_report,
    render_report,
    slice_by_trace,
    totals,
)
from repro.obs.schema import SchemaError, load_events  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="an obs/v1 JSONL trace file")
    parser.add_argument("--top", type=int, default=10,
                        help="solver queries to list (default 10)")
    parser.add_argument("--validate-only", action="store_true",
                        help="schema-check the trace and exit")
    parser.add_argument("--assert-attributed", action="store_true",
                        help="fail if any solver query lacks an owning span")
    parser.add_argument("--job", metavar="JOB-ID",
                        help="slice to one job's trace context (a job id "
                             "from the daemon, or a raw trace id)")
    args = parser.parse_args(argv)

    try:
        events, summary = load_events(args.trace)
    except SchemaError as exc:
        print(f"INVALID TRACE: {exc}", file=sys.stderr)
        return 1
    if args.validate_only:
        print(
            f"valid: {summary['events']} events, {summary['spans']} spans, "
            f"run {summary['run']}"
            + (f", {len(summary['unclosed'])} unclosed span(s) "
               "(truncated run)" if summary["unclosed"] else "")
        )
        return 0
    if args.job:
        trace_id = job_trace_id(events, args.job)
        if trace_id is None:
            print(f"UNKNOWN JOB: no service.job span or trace id matches "
                  f"{args.job!r}", file=sys.stderr)
            return 1
        events = slice_by_trace(events, trace_id)
        print(render_job_report(args.trace, args.job, top=args.top))
    else:
        print(render_report(args.trace, top=args.top))
    if args.assert_attributed:
        orphans = totals(events)["orphan_queries"]
        if orphans:
            print(
                f"ATTRIBUTION FAILURE: {orphans} solver quer"
                f"{'y' if orphans == 1 else 'ies'} with no owning span",
                file=sys.stderr,
            )
            return 1
        print("all solver queries attributed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
