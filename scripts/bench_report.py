#!/usr/bin/env python
"""Diff two BENCH_table1.json reports and flag regressions.

Usage::

    python scripts/bench_report.py BASELINE.json CURRENT.json
    python scripts/bench_report.py BENCH_table1.json   # just print it
    python scripts/bench_report.py BENCH_table1.json \
        --history BENCH_history.jsonl

A regression is a wall-time increase above the tolerance (default 10%,
``--wall-tolerance``) or *any* increase in a deterministic encode counter
(AIG nodes, Tseitin clauses, solver instances) — counters are exact for
serial runs, so even a +1 drift means the encoding changed.  Exits
nonzero when a regression is found, so CI can gate on it.

``--history`` tracks wall time across runs instead of against one
baseline: each invocation appends a dated row to the JSONL file and
flags any case whose wall time drifts more than 10%
(``--drift-tolerance``) from the trailing median of the last
``--history-window`` runs.  The median absorbs one-off noise spikes a
single-baseline diff would either gate on or bless; slow drift that a
10%-per-step tolerance would never catch accumulates against the
median instead.  Slower-than-median drift exits nonzero; faster is
reported as an improvement.

The pipeline ratios are gated *absolutely*, in both modes (even when
just printing one report): a ``wall_ratio`` above 1.0 anywhere means
the incremental pipeline stopped paying for itself, and an
``encode_ratio`` below 2.0 on the single-cycle RV32I headline case
means the encode saving eroded — either fails the report regardless of
what the baseline said.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys

#: counters where any increase is a regression (deterministic units)
COUNTER_FIELDS = ("solver_instances", "aig_nodes", "tseitin_clauses")
WALL_FIELD = "wall_time_seconds"

#: absolute ratio gates: (case-name prefix, field, bound, sense).
#: ``max`` fails values above the bound, ``min`` fails values below;
#: the empty prefix applies to every case recording the field.
RATIO_GATES = (
    ("", "wall_ratio", 1.0, "max"),
    ("sc_rv32i", "encode_ratio", 2.0, "min"),
)


def gate_violations(cases):
    """Yield messages for absolute ratio-gate violations in ``cases``."""
    for prefix, field, bound, sense in RATIO_GATES:
        for name in sorted(cases):
            if not name.startswith(prefix):
                continue
            value = cases[name].get(field)
            if value is None:
                continue
            if (value > bound) if sense == "max" else (value < bound):
                yield (
                    f"{name}: {field} {value} violates the "
                    f"{'<=' if sense == 'max' else '>='} {bound} gate"
                )


def load_cases(path):
    with open(path) as handle:
        report = json.load(handle)
    return report.get("cases", {})


def load_history(path):
    """All prior dated rows of a history JSONL file (missing file: [])."""
    entries = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    except FileNotFoundError:
        pass
    return entries


def trailing_median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def history_drift(entries, cases, window, tolerance):
    """Yield ``(slower, message)`` for wall drift vs the trailing median.

    ``slower`` is True when the case drifted above the median (the
    gating direction); below-median drift is an improvement and only
    reported.
    """
    for name in sorted(cases):
        wall = cases[name].get(WALL_FIELD)
        if wall is None:
            continue
        trail = [
            entry["cases"][name][WALL_FIELD]
            for entry in entries[-window:]
            if WALL_FIELD in entry.get("cases", {}).get(name, {})
        ]
        if not trail:
            continue
        median = trailing_median(trail)
        if median <= 0:
            continue
        delta = (wall - median) / median
        if abs(delta) > tolerance:
            yield delta > 0, (
                f"{name}: {WALL_FIELD} {wall} drifts {delta:+.0%} from "
                f"the trailing median {median:.3f} over {len(trail)} "
                f"run(s) (tolerance ±{tolerance:.0%})"
            )


def history_mode(report_path, history_path, window, tolerance, date=None):
    """Append a dated row; exit nonzero on slower-than-median drift."""
    cases = load_cases(report_path)
    entries = load_history(history_path)
    slower = 0
    for is_slower, message in history_drift(entries, cases, window,
                                            tolerance):
        if is_slower:
            slower += 1
            print(f"DRIFT       {message}")
        else:
            print(f"IMPROVED    {message}")
    row = {
        "date": date or datetime.date.today().isoformat(),
        "cases": cases,
    }
    with open(history_path, "a") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    print(f"recorded {len(cases)} case(s) dated {row['date']} into "
          f"{history_path} ({len(entries) + 1} row(s) total)")
    if slower:
        print(f"\n{slower} case(s) drifted slower than the trailing median")
        return 1
    return 0


def fmt_case(name, fields):
    parts = [f"{name}:"]
    for key in ("pipeline", "status", WALL_FIELD, "iterations",
                *COUNTER_FIELDS, "trace_cache_hits", "encode_ratio",
                "wall_ratio", "trail_reuse_hits"):
        if key in fields:
            parts.append(f"{key}={fields[key]}")
    return "  " + " ".join(parts)


def diff_cases(baseline, current, wall_tolerance):
    """Yield (severity, message) pairs for an asymmetric-safe diff.

    Severity is ``'regression'``, ``'added'``, ``'removed'`` or ``'info'``.
    A case present in only one report is *reported*, never an error: new
    benches appear before their baseline lands, and retired benches
    linger in old baselines — neither should crash the diff or fail CI.
    """
    for name in sorted(current):
        if name not in baseline:
            yield "added", fmt_case(name, current[name]).strip()
            continue
        base, cur = baseline[name], current[name]
        for field in COUNTER_FIELDS:
            if field not in base or field not in cur:
                continue
            if cur[field] > base[field]:
                yield "regression", (
                    f"{name}: {field} {base[field]} -> {cur[field]} "
                    f"(+{cur[field] - base[field]})"
                )
            elif cur[field] < base[field]:
                yield "info", (
                    f"{name}: {field} {base[field]} -> {cur[field]} "
                    f"({cur[field] - base[field]})"
                )
        if WALL_FIELD in base and WALL_FIELD in cur and base[WALL_FIELD] > 0:
            delta = (cur[WALL_FIELD] - base[WALL_FIELD]) / base[WALL_FIELD]
            if delta > wall_tolerance:
                yield "regression", (
                    f"{name}: {WALL_FIELD} {base[WALL_FIELD]} -> "
                    f"{cur[WALL_FIELD]} (+{delta:.0%}, tolerance "
                    f"{wall_tolerance:.0%})"
                )
        if base.get("status") == "ok" and cur.get("status") != "ok":
            yield "regression", (
                f"{name}: status ok -> {cur.get('status')!r}"
            )
    for name in sorted(set(baseline) - set(current)):
        yield "removed", fmt_case(name, baseline[name]).strip()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_table1.json")
    parser.add_argument("current", nargs="?", default=None,
                        help="current report; omit to just print baseline")
    parser.add_argument("--wall-tolerance", type=float, default=0.10,
                        help="relative wall-time growth allowed (default .10)")
    parser.add_argument("--history", metavar="HISTORY.jsonl", default=None,
                        help="append a dated row and gate wall drift "
                             "against the trailing median")
    parser.add_argument("--history-window", type=int, default=5,
                        help="trailing rows the median spans (default 5)")
    parser.add_argument("--drift-tolerance", type=float, default=0.10,
                        help="relative drift vs the trailing median "
                             "(default .10)")
    parser.add_argument("--date", default=None,
                        help="date stamp for the history row "
                             "(default: today, ISO format)")
    args = parser.parse_args(argv)

    if args.history is not None:
        if args.current is not None:
            parser.error("--history takes one report, not a baseline pair")
        return history_mode(args.baseline, args.history,
                            args.history_window, args.drift_tolerance,
                            date=args.date)

    if args.current is None:
        cases = load_cases(args.baseline)
        for name, fields in sorted(cases.items()):
            print(fmt_case(name, fields))
        gated = 0
        for message in gate_violations(cases):
            gated += 1
            print(f"GATE        {message}")
        if gated:
            print(f"\n{gated} ratio gate violation(s)")
            return 1
        return 0

    baseline = load_cases(args.baseline)
    current = load_cases(args.current)
    regressions = 0
    added = removed = 0
    for severity, message in diff_cases(baseline, current,
                                        args.wall_tolerance):
        if severity == "regression":
            regressions += 1
            print(f"REGRESSION  {message}")
        elif severity == "added":
            added += 1
            print(f"ADDED       {message}")
        elif severity == "removed":
            removed += 1
            print(f"REMOVED     {message}")
        else:
            print(f"            {message}")
    for message in gate_violations(current):
        regressions += 1
        print(f"GATE        {message}")
    if added or removed:
        print(f"\n{added} case(s) only in current, "
              f"{removed} only in baseline")
    if regressions:
        print(f"\n{regressions} regression(s) found")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
