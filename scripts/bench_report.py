#!/usr/bin/env python
"""Diff two BENCH_table1.json reports and flag regressions.

Usage::

    python scripts/bench_report.py BASELINE.json CURRENT.json
    python scripts/bench_report.py BENCH_table1.json   # just print it

A regression is a wall-time increase above the tolerance (default 10%,
``--wall-tolerance``) or *any* increase in a deterministic encode counter
(AIG nodes, Tseitin clauses, solver instances) — counters are exact for
serial runs, so even a +1 drift means the encoding changed.  Exits
nonzero when a regression is found, so CI can gate on it.

The pipeline ratios are gated *absolutely*, in both modes (even when
just printing one report): a ``wall_ratio`` above 1.0 anywhere means
the incremental pipeline stopped paying for itself, and an
``encode_ratio`` below 2.0 on the single-cycle RV32I headline case
means the encode saving eroded — either fails the report regardless of
what the baseline said.
"""

from __future__ import annotations

import argparse
import json
import sys

#: counters where any increase is a regression (deterministic units)
COUNTER_FIELDS = ("solver_instances", "aig_nodes", "tseitin_clauses")
WALL_FIELD = "wall_time_seconds"

#: absolute ratio gates: (case-name prefix, field, bound, sense).
#: ``max`` fails values above the bound, ``min`` fails values below;
#: the empty prefix applies to every case recording the field.
RATIO_GATES = (
    ("", "wall_ratio", 1.0, "max"),
    ("sc_rv32i", "encode_ratio", 2.0, "min"),
)


def gate_violations(cases):
    """Yield messages for absolute ratio-gate violations in ``cases``."""
    for prefix, field, bound, sense in RATIO_GATES:
        for name in sorted(cases):
            if not name.startswith(prefix):
                continue
            value = cases[name].get(field)
            if value is None:
                continue
            if (value > bound) if sense == "max" else (value < bound):
                yield (
                    f"{name}: {field} {value} violates the "
                    f"{'<=' if sense == 'max' else '>='} {bound} gate"
                )


def load_cases(path):
    with open(path) as handle:
        report = json.load(handle)
    return report.get("cases", {})


def fmt_case(name, fields):
    parts = [f"{name}:"]
    for key in ("pipeline", "status", WALL_FIELD, "iterations",
                *COUNTER_FIELDS, "trace_cache_hits", "encode_ratio",
                "wall_ratio", "trail_reuse_hits"):
        if key in fields:
            parts.append(f"{key}={fields[key]}")
    return "  " + " ".join(parts)


def diff_cases(baseline, current, wall_tolerance):
    """Yield (severity, message) pairs for an asymmetric-safe diff.

    Severity is ``'regression'``, ``'added'``, ``'removed'`` or ``'info'``.
    A case present in only one report is *reported*, never an error: new
    benches appear before their baseline lands, and retired benches
    linger in old baselines — neither should crash the diff or fail CI.
    """
    for name in sorted(current):
        if name not in baseline:
            yield "added", fmt_case(name, current[name]).strip()
            continue
        base, cur = baseline[name], current[name]
        for field in COUNTER_FIELDS:
            if field not in base or field not in cur:
                continue
            if cur[field] > base[field]:
                yield "regression", (
                    f"{name}: {field} {base[field]} -> {cur[field]} "
                    f"(+{cur[field] - base[field]})"
                )
            elif cur[field] < base[field]:
                yield "info", (
                    f"{name}: {field} {base[field]} -> {cur[field]} "
                    f"({cur[field] - base[field]})"
                )
        if WALL_FIELD in base and WALL_FIELD in cur and base[WALL_FIELD] > 0:
            delta = (cur[WALL_FIELD] - base[WALL_FIELD]) / base[WALL_FIELD]
            if delta > wall_tolerance:
                yield "regression", (
                    f"{name}: {WALL_FIELD} {base[WALL_FIELD]} -> "
                    f"{cur[WALL_FIELD]} (+{delta:.0%}, tolerance "
                    f"{wall_tolerance:.0%})"
                )
        if base.get("status") == "ok" and cur.get("status") != "ok":
            yield "regression", (
                f"{name}: status ok -> {cur.get('status')!r}"
            )
    for name in sorted(set(baseline) - set(current)):
        yield "removed", fmt_case(name, baseline[name]).strip()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_table1.json")
    parser.add_argument("current", nargs="?", default=None,
                        help="current report; omit to just print baseline")
    parser.add_argument("--wall-tolerance", type=float, default=0.10,
                        help="relative wall-time growth allowed (default .10)")
    args = parser.parse_args(argv)

    if args.current is None:
        cases = load_cases(args.baseline)
        for name, fields in sorted(cases.items()):
            print(fmt_case(name, fields))
        gated = 0
        for message in gate_violations(cases):
            gated += 1
            print(f"GATE        {message}")
        if gated:
            print(f"\n{gated} ratio gate violation(s)")
            return 1
        return 0

    baseline = load_cases(args.baseline)
    current = load_cases(args.current)
    regressions = 0
    added = removed = 0
    for severity, message in diff_cases(baseline, current,
                                        args.wall_tolerance):
        if severity == "regression":
            regressions += 1
            print(f"REGRESSION  {message}")
        elif severity == "added":
            added += 1
            print(f"ADDED       {message}")
        elif severity == "removed":
            removed += 1
            print(f"REMOVED     {message}")
        else:
            print(f"            {message}")
    for message in gate_violations(current):
        regressions += 1
        print(f"GATE        {message}")
    if added or removed:
        print(f"\n{added} case(s) only in current, "
              f"{removed} only in baseline")
    if regressions:
        print(f"\n{regressions} regression(s) found")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
