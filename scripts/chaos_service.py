#!/usr/bin/env python3
"""Chaos lane: ``kill -9`` the synthesis daemon and prove nothing is lost.

Each round starts the daemon (``python -m repro.service``) on a fresh
state directory, submits a mix of accumulator and ALU jobs, then sends
``SIGKILL`` after a randomized delay — deliberately landing anywhere in
the pipeline: before the first checkpoint, between checkpoints, or after
completion.  The restarted daemon must then:

* re-admit every interrupted job and run all of them to ``done``;
* produce **bit-identical** designs to an undisturbed reference run
  (resume handles reuse solved instructions verbatim, and the engine's
  canonicalization makes the remainder deterministic);
* serve resubmissions of the same requests from the idempotency cache;
* leave **zero orphan processes** tied to the state directory;
* report ``recovery.ok`` through the ``health`` op after the kill;
* shut down gracefully (exit code 0) when asked.

The kill delays are drawn from a seeded RNG, so a failing round is
reproducible with ``--seed``.

A **telemetry round** runs first (skip with ``--no-telemetry-round``):
an undisturbed daemon with tracing on serves the same jobs while the
harness scrapes ``telemetry`` and ``health``, asserting nonzero
``service.request`` / ``solver.check`` latency percentiles and a
Prometheus exposition that carries them; a deliberately poisoned job
(the chaos-gated ``chaos_poison`` design) must then leave at least one
schema-valid flight-recorder dump and flip ``health`` to ``degraded``;
finally ``trace_report.py --job`` must attribute every solver query of
every completed job to its submission's single trace id (0 orphans).

Run: ``PYTHONPATH=src python scripts/chaos_service.py [--rounds N]``
"""

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.service import SynthesisService  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

DESIGNS = ["accumulator", "alu_machine"]


def reference_designs():
    """Undisturbed in-process runs: the bit-identical ground truth."""
    reference = {}
    with tempfile.TemporaryDirectory() as state:
        service = SynthesisService(state, fsync=False)
        service.start()
        try:
            for design in DESIGNS:
                ack = service.submit(design)
                job = service.wait(ack["job_id"], timeout=300)
                assert job["state"] == "done", job
                reference[design] = job["result"]["design"]
        finally:
            service.shutdown(timeout=15.0)
    return reference


def start_daemon(state_dir, stall, trace=None, chaos=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if chaos:
        # Unlocks the chaos-only poison-pill design in the daemon.
        env["REPRO_SERVICE_CHAOS"] = "1"
    argv = [sys.executable, "-m", "repro.service",
            "--state-dir", state_dir, "--tcp", "127.0.0.1:0",
            "--stall", str(stall)]
    if trace:
        argv += ["--trace", trace]
    proc = subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            text=True)
    banner = json.loads(proc.stdout.readline())
    _host, port = banner["listening"]
    return proc, port, banner


def orphans_for(state_dir):
    """PIDs (other than ours) whose cmdline mentions the state dir."""
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if state_dir in cmdline:
            found.append(int(entry))
    return found


def _assert_histogram(metrics, name):
    """The named latency histogram must exist with nonzero percentiles."""
    summary = metrics.get(f"hist.{name}")
    assert summary and summary["count"] > 0, (
        f"telemetry: histogram {name} never observed: {summary}")
    assert summary["p50"] and summary["p99"], (
        f"telemetry: histogram {name} has empty percentiles: {summary}")
    return summary


def telemetry_round(stall):
    """The undisturbed observability round: scrape, poison, attribute."""
    import glob

    from repro.obs.schema import load_events
    import trace_report

    state_dir = tempfile.mkdtemp(prefix="chaos-telemetry-")
    trace_path = os.path.join(state_dir, "trace.jsonl")
    try:
        proc, port, _banner = start_daemon(state_dir, stall,
                                           trace=trace_path, chaos=True)
        with ServiceClient.connect_retry(port=port) as client:
            health = client.health()
            assert health["status"] == "ok", (
                f"fresh daemon is not healthy: {health}")
            assert health["checks"]["recovery"]["ok"], health

            acks = {design: client.submit(design) for design in DESIGNS}
            traces = {}
            for design, ack in acks.items():
                assert ack.get("trace_id"), (
                    f"submit ack carries no trace id: {ack}")
                traces[design] = ack["trace_id"]
                job = client.wait(ack["job_id"], timeout=300)
                assert job["state"] == "done", job

            telemetry = client.telemetry()
            metrics = telemetry["metrics"]
            request_hist = _assert_histogram(metrics, "service.request")
            _assert_histogram(metrics, "solver.check")
            _assert_histogram(metrics, "service.queue_wait")
            prom = telemetry["prometheus"]
            assert "repro_service_request_count" in prom, (
                "prometheus exposition is missing the request histogram")
            assert 'le="+Inf"' in prom, prom[:200]

            # The poison pill: crash-loops to failed-permanent, which
            # must trip the flight recorder and degrade health.
            poison = client.submit("chaos_poison")
            job = client.wait(poison["job_id"], timeout=120)
            assert job["state"] == "failed-permanent", (
                f"poison job ended {job}")
            health = client.health()
            assert health["status"] == "degraded", (
                f"health ignored a fresh poison verdict: {health}")
            assert not health["checks"]["last_crash"]["ok"], health
            assert health["checks"]["flight"]["dumps"] >= 1, health
            client.shutdown()
        proc.wait(timeout=60)
        assert proc.returncode == 0, proc.returncode

        # With tracing on, dumps archive beside the trace (the tracer's
        # artifact dir); without it they land in <state>/flight — both
        # are inside the state dir here.
        dumps = glob.glob(os.path.join(state_dir, "**", "*flight-*.jsonl"),
                          recursive=True)
        assert dumps, "poison verdict left no flight-recorder dump"
        for dump in dumps:
            events, summary = load_events(dump)  # schema-valid or raises
            assert events[0]["attrs"]["reason"].startswith("poison-"), (
                f"unexpected dump reason in {dump}")

        # Per-job attribution: every solver query of every completed job
        # must slice to its submission's trace id with zero orphans.
        for design, ack in acks.items():
            code = trace_report.main(
                [trace_path, "--job", ack["job_id"], "--assert-attributed"])
            assert code == 0, (
                f"trace_report --job {ack['job_id']} ({design}) exited "
                f"{code}")
        print(f"telemetry round: request p50={request_hist['p50']}s "
              f"p99={request_hist['p99']}s, {len(dumps)} flight dump(s), "
              f"{len(acks)} job(s) fully attributed", flush=True)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def one_round(index, rng, reference, stall, trace=None):
    state_dir = tempfile.mkdtemp(prefix=f"chaos-service-{index}-")
    try:
        proc, port, _banner = start_daemon(state_dir, stall, trace=trace)
        with ServiceClient.connect_retry(port=port) as client:
            job_ids = {}
            for design in DESIGNS:
                ack = client.submit(design)
                assert ack["state"] == "accepted", ack
                job_ids[design] = ack["job_id"]
            # Scrape the live ops mid-flight: both must answer while
            # jobs run, and the request histogram is already charging.
            telemetry = client.telemetry()
            assert telemetry["metrics"]["hist.service.request"]["count"], (
                f"round {index}: no service.request observations")
            health = client.health()
            assert health["status"] in ("ok", "degraded"), health
        # The randomized kill point: anywhere from "no checkpoint yet"
        # to "everything already done".
        delay = rng.uniform(0.0, 4 * stall + 1.0)
        time.sleep(delay)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        proc2, port2, banner2 = start_daemon(state_dir, 0.0)
        recovery = banner2["recovery"]
        with ServiceClient.connect_retry(port=port2) as client:
            # The kill-9 recovery gate: the restarted daemon must report
            # a healthy journal and a completed recovery pass.
            health = client.health()
            assert health["checks"]["recovery"]["ok"], (
                f"round {index}: recovery unhealthy after kill -9: "
                f"{health}")
            assert health["checks"]["journal"]["ok"], (
                f"round {index}: journal unhealthy after kill -9: "
                f"{health}")
            for design, job_id in job_ids.items():
                job = client.wait(job_id, timeout=300)
                assert job["state"] == "done", (
                    f"round {index}: {design} ended {job}")
                got = job["result"]["design"]
                assert got == reference[design], (
                    f"round {index}: {design} recovery is not "
                    f"bit-identical to the reference run")
            # Idempotency: identical submissions are cache hits now.
            hits = 0
            for design in DESIGNS:
                again = client.submit(design)
                assert again["cached"], (
                    f"round {index}: {design} missed the result cache "
                    f"after recovery: {again}")
                hits += 1
            client.shutdown()
        proc2.wait(timeout=60)
        assert proc2.returncode == 0, (
            f"round {index}: graceful shutdown exited "
            f"{proc2.returncode}")
        leaked = orphans_for(state_dir)
        assert not leaked, (
            f"round {index}: orphan processes survived: {leaked}")
        print(f"round {index}: killed after {delay:.2f}s "
              f"(recovery: replayed={recovery['replayed']} "
              f"requeued={recovery['requeued']} "
              f"torn_tail={recovery['torn_tail']}), "
              f"{len(DESIGNS)} jobs bit-identical, {hits} cache hits, "
              f"0 orphans", flush=True)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(
        description="Kill -9 the synthesis daemon at randomized points "
        "and assert bit-identical recovery.")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20240808)
    parser.add_argument("--stall", type=float, default=0.3,
                        help="per-checkpoint stall in the daemon, so "
                        "kills land mid-job often")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record the first (killed) daemon's obs "
                        "trace to PATH")
    parser.add_argument("--no-telemetry-round", action="store_true",
                        help="skip the undisturbed telemetry/poison/"
                        "attribution round")
    args = parser.parse_args()

    rng = random.Random(args.seed)
    if not args.no_telemetry_round:
        print("telemetry round (undisturbed, traced, poisoned)...",
              flush=True)
        telemetry_round(args.stall)
    print("computing reference designs (undisturbed runs)...", flush=True)
    reference = reference_designs()
    for index in range(args.rounds):
        one_round(index, rng, reference, args.stall,
                  trace=args.trace if index == 0 else None)
    print(f"chaos lane passed: {args.rounds} round(s), every kill point "
          "recovered bit-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
