#!/usr/bin/env python3
"""Chaos lane: ``kill -9`` the synthesis daemon and prove nothing is lost.

Each round starts the daemon (``python -m repro.service``) on a fresh
state directory, submits a mix of accumulator and ALU jobs, then sends
``SIGKILL`` after a randomized delay — deliberately landing anywhere in
the pipeline: before the first checkpoint, between checkpoints, or after
completion.  The restarted daemon must then:

* re-admit every interrupted job and run all of them to ``done``;
* produce **bit-identical** designs to an undisturbed reference run
  (resume handles reuse solved instructions verbatim, and the engine's
  canonicalization makes the remainder deterministic);
* serve resubmissions of the same requests from the idempotency cache;
* leave **zero orphan processes** tied to the state directory;
* shut down gracefully (exit code 0) when asked.

The kill delays are drawn from a seeded RNG, so a failing round is
reproducible with ``--seed``.

Run: ``PYTHONPATH=src python scripts/chaos_service.py [--rounds N]``
"""

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.service import SynthesisService  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

DESIGNS = ["accumulator", "alu_machine"]


def reference_designs():
    """Undisturbed in-process runs: the bit-identical ground truth."""
    reference = {}
    with tempfile.TemporaryDirectory() as state:
        service = SynthesisService(state, fsync=False)
        service.start()
        try:
            for design in DESIGNS:
                ack = service.submit(design)
                job = service.wait(ack["job_id"], timeout=300)
                assert job["state"] == "done", job
                reference[design] = job["result"]["design"]
        finally:
            service.shutdown(timeout=15.0)
    return reference


def start_daemon(state_dir, stall, trace=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    argv = [sys.executable, "-m", "repro.service",
            "--state-dir", state_dir, "--tcp", "127.0.0.1:0",
            "--stall", str(stall)]
    if trace:
        argv += ["--trace", trace]
    proc = subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            text=True)
    banner = json.loads(proc.stdout.readline())
    _host, port = banner["listening"]
    return proc, port, banner


def orphans_for(state_dir):
    """PIDs (other than ours) whose cmdline mentions the state dir."""
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if state_dir in cmdline:
            found.append(int(entry))
    return found


def one_round(index, rng, reference, stall, trace=None):
    state_dir = tempfile.mkdtemp(prefix=f"chaos-service-{index}-")
    try:
        proc, port, _banner = start_daemon(state_dir, stall, trace=trace)
        with ServiceClient.connect_retry(port=port) as client:
            job_ids = {}
            for design in DESIGNS:
                ack = client.submit(design)
                assert ack["state"] == "accepted", ack
                job_ids[design] = ack["job_id"]
        # The randomized kill point: anywhere from "no checkpoint yet"
        # to "everything already done".
        delay = rng.uniform(0.0, 4 * stall + 1.0)
        time.sleep(delay)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        proc2, port2, banner2 = start_daemon(state_dir, 0.0)
        recovery = banner2["recovery"]
        with ServiceClient.connect_retry(port=port2) as client:
            for design, job_id in job_ids.items():
                job = client.wait(job_id, timeout=300)
                assert job["state"] == "done", (
                    f"round {index}: {design} ended {job}")
                got = job["result"]["design"]
                assert got == reference[design], (
                    f"round {index}: {design} recovery is not "
                    f"bit-identical to the reference run")
            # Idempotency: identical submissions are cache hits now.
            hits = 0
            for design in DESIGNS:
                again = client.submit(design)
                assert again["cached"], (
                    f"round {index}: {design} missed the result cache "
                    f"after recovery: {again}")
                hits += 1
            client.shutdown()
        proc2.wait(timeout=60)
        assert proc2.returncode == 0, (
            f"round {index}: graceful shutdown exited "
            f"{proc2.returncode}")
        leaked = orphans_for(state_dir)
        assert not leaked, (
            f"round {index}: orphan processes survived: {leaked}")
        print(f"round {index}: killed after {delay:.2f}s "
              f"(recovery: replayed={recovery['replayed']} "
              f"requeued={recovery['requeued']} "
              f"torn_tail={recovery['torn_tail']}), "
              f"{len(DESIGNS)} jobs bit-identical, {hits} cache hits, "
              f"0 orphans", flush=True)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(
        description="Kill -9 the synthesis daemon at randomized points "
        "and assert bit-identical recovery.")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20240808)
    parser.add_argument("--stall", type=float, default=0.3,
                        help="per-checkpoint stall in the daemon, so "
                        "kills land mid-job often")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record the first (killed) daemon's obs "
                        "trace to PATH")
    args = parser.parse_args()

    rng = random.Random(args.seed)
    print("computing reference designs (undisturbed runs)...", flush=True)
    reference = reference_designs()
    for index in range(args.rounds):
        one_round(index, rng, reference, args.stall,
                  trace=args.trace if index == 0 else None)
    print(f"chaos lane passed: {args.rounds} round(s), every kill point "
          "recovered bit-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
