#!/usr/bin/env python
"""Attribute solver wall time to CDCL phases for one synthesis workload.

Usage::

    python scripts/profile_solver.py
    python scripts/profile_solver.py --pipeline fresh
    python scripts/profile_solver.py --isa RV32I --variant single_cycle \\
        --instructions add,addi,lui,and --trace /tmp/profile.jsonl

Answers "where does the SAT time actually go?" at two granularities:

* **Per phase** — every CDCL core the run creates gets
  ``SatSolver.enable_profiling()`` turned on, so propagate / analyze /
  reduce / simplify wall seconds accumulate per solver and are summed
  here across the whole run.  This is the attribution that drove the
  incremental-verify redesign: it is how "the descent floor dominates"
  and "hard proofs burn analyze time" become measurements instead of
  guesses.
* **Per query kind** — the run executes under a tracer, and the
  ``solver.check`` provenance events (PR-4 observability) are folded by
  their owning span kind: how many checks, their wall, conflicts,
  propagations and trail-reuse per call site (verify vs guess vs
  polish).  The same per-check internals are charged to
  ``repro.smt.counters``, and the report prints both so the exact
  reconciliation is visible.

The profiled run is slower than a plain one (two clock reads per phase
call); numbers are for attribution, not for benchmarking absolute wall.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.obs import Tracer, clear, install  # noqa: E402
from repro.obs.report import (  # noqa: E402
    solver_queries,
    top_queries_lines,
    totals,
)
from repro.obs.schema import load_events  # noqa: E402
from repro.smt import counters as _counters  # noqa: E402
from repro.smt.sat import solver as _sat_mod  # noqa: E402

_PHASES = ("propagate", "analyze", "reduce", "simplify")


class _ProfileAllSolvers:
    """Context manager: every ``SatSolver`` built inside gets profiling.

    Wraps ``SatSolver.__init__`` (restored on exit) and keeps each live
    profile dict, so phase walls can be summed across the dozens of
    cores a synthesis run creates — including cores inside backends the
    script never sees directly.
    """

    def __init__(self):
        self.profiles = []
        self._original = None

    def __enter__(self):
        original = _sat_mod.SatSolver.__init__
        profiles = self.profiles

        def patched(solver, *args, **kwargs):
            original(solver, *args, **kwargs)
            profiles.append(solver.enable_profiling())

        self._original = original
        _sat_mod.SatSolver.__init__ = patched
        return self

    def __exit__(self, *exc):
        _sat_mod.SatSolver.__init__ = self._original
        return False

    def summed(self):
        agg = {phase: 0.0 for phase in _PHASES}
        agg["solves"] = 0
        for profile in self.profiles:
            for key in agg:
                agg[key] += profile[key]
        return agg


def _run_workload(args):
    from repro.designs import riscv
    from repro.smt.backends import SolverConfig
    from repro.synthesis import synthesize

    problem = riscv.build_problem(
        args.isa, args.variant,
        instructions=args.instructions.split(",") if args.instructions
        else None,
    )
    config = SolverConfig(backend=args.backend, pipeline=args.pipeline)
    return synthesize(problem, timeout=args.timeout, config=config)


def _phase_lines(profiled, wall):
    agg = profiled.summed()
    phase_total = sum(agg[phase] for phase in _PHASES)
    lines = [
        f"phase attribution ({len(profiled.profiles)} solver cores, "
        f"{agg['solves']} solves):",
        "  {:<12} {:>9}  {:>6}".format("phase", "wall_s", "share"),
    ]
    for phase in _PHASES:
        share = agg[phase] / phase_total if phase_total else 0.0
        lines.append(
            f"  {phase:<12} {agg[phase]:>9.3f}  {share:>5.1%}"
        )
    lines.append(f"  {'(total)':<12} {phase_total:>9.3f}  "
                 f"{phase_total / wall if wall else 0.0:>5.1%} of "
                 f"{wall:.3f}s run wall")
    return lines


def _kind_lines(events):
    by_kind = {}
    for query in solver_queries(events):
        kind = query.get("kind") or "(none)"
        row = by_kind.setdefault(
            kind, {"n": 0, "wall": 0.0, "conflicts": 0,
                   "propagations": 0, "reuse": 0})
        row["n"] += 1
        row["wall"] += query.get("wall") or 0.0
        row["conflicts"] += query.get("conflicts") or 0
        row["propagations"] += query.get("propagations") or 0
        row["reuse"] += query.get("trail_reuse_hits") or 0
    lines = [
        "per query kind (solver.check events by owning span):",
        "  {:<22} {:>6} {:>9} {:>10} {:>12} {:>6}".format(
            "kind", "n", "wall_s", "conflicts", "props", "reuse"),
    ]
    for kind, row in sorted(by_kind.items(), key=lambda kv: -kv[1]["wall"]):
        lines.append(
            "  {:<22} {:>6} {:>9.3f} {:>10} {:>12} {:>6}".format(
                kind, row["n"], row["wall"], row["conflicts"],
                row["propagations"], row["reuse"])
        )
    if not by_kind:
        lines.append("  (no solver queries in trace)")
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--isa", default="RV32I")
    parser.add_argument("--variant", default="single_cycle")
    parser.add_argument("--instructions", default="add,addi,lui,and",
                        help="comma list; empty string = the full ISA")
    parser.add_argument("--pipeline", default="incremental",
                        choices=["incremental", "fresh"])
    parser.add_argument("--backend", default=None,
                        help="solver backend name (default: $REPRO_BACKEND)")
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--trace", default=None,
                        help="keep the obs trace at this path")
    parser.add_argument("--top", type=int, default=8,
                        help="expensive queries to list")
    args = parser.parse_args(argv)

    trace_path = args.trace or os.path.join(
        tempfile.mkdtemp(prefix="repro-profile-"), "trace.jsonl")
    tracer = Tracer(trace_path)
    install(tracer)
    before = _counters.snapshot()
    started = time.monotonic()
    try:
        with _ProfileAllSolvers() as profiled:
            _run_workload(args)
    finally:
        wall = time.monotonic() - started
        clear()
        tracer.close()
    delta = _counters.delta_since(before)

    events, _summary = load_events(trace_path)
    agg = totals(events)
    print(f"workload: {args.isa}/{args.variant} "
          f"[{args.instructions or 'all'}] pipeline={args.pipeline} "
          f"wall={wall:.3f}s")
    print()
    for line in _phase_lines(profiled, wall):
        print(line)
    print()
    for line in _kind_lines(events):
        print(line)
    print()
    print(f"top {args.top} solver queries by wall time:")
    for line in top_queries_lines(events, top=args.top):
        print(line)
    print()
    print("solver counters (repro.smt.counters deltas):")
    for key in sorted(delta):
        if key.startswith("sat_") and delta[key]:
            traced = agg["solver_internals"].get(key[len("sat_"):])
            note = ""
            if traced is not None:
                note = ("  == trace" if traced == delta[key]
                        else f"  != trace ({traced})")
            print(f"  {key:<28} {delta[key]:>12}{note}")
    print()
    print(f"{agg['solver_queries']} solver queries "
          f"({agg['orphan_queries']} unattributed), trace: {trace_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
