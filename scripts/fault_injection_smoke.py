#!/usr/bin/env python3
"""CI smoke check: a fault mid-CEGIS must degrade, not crash.

Installs a ``FaultInjector`` that forces an UNKNOWN verdict partway
through the ALU synthesis run and asserts the engine hands back a
``PartialSynthesisResult`` carrying the already-completed instructions,
then resumes from it and verifies the completed design.  Exits non-zero
on any violation of the degradation contract.

Run: ``PYTHONPATH=src python scripts/fault_injection_smoke.py``
"""

import sys

from repro.designs import alu_machine
from repro.runtime import FaultInjector
from repro.synthesis import PartialSynthesisResult, synthesize, verify_design


def main():
    problem = alu_machine.build_problem()
    names = [i.name for i in problem.spec.instructions]

    # Calibrate: count facade checks per instruction on a clean run.
    counter = FaultInjector()
    boundaries = {}
    with counter.installed():
        synthesize(problem, timeout=300, check_independence=False,
                   progress=lambda name, _s: boundaries.setdefault(
                       name, counter.check_count))
    first_span_end = boundaries[names[0]]

    # Inject: the first check of the second instruction comes back UNKNOWN.
    injector = FaultInjector().inject_unknown(at_check=first_span_end + 1)
    with injector.installed():
        partial = synthesize(problem, timeout=300, check_independence=False,
                             on_timeout="partial")

    assert isinstance(partial, PartialSynthesisResult), (
        f"expected PartialSynthesisResult, got {type(partial).__name__}")
    assert partial.pending == [names[1]], partial.pending
    assert partial.completed_count == len(names) - 1, partial.summary()
    assert injector.fired, "the planned fault never fired"
    print(partial.summary())

    resumed = synthesize(problem, timeout=300,
                         resume_from=partial.to_dict())
    verdict = verify_design(resumed.completed_design, problem.spec,
                            problem.alpha)
    assert verdict.ok, verdict.summary()
    print(f"resume completed {len(resumed.per_instruction)} instructions; "
          "design verifies")
    return 0


if __name__ == "__main__":
    sys.exit(main())
