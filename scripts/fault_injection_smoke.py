#!/usr/bin/env python3
"""CI smoke check: a fault mid-CEGIS must degrade, not crash.

Five lanes:

* **degradation** — a ``FaultInjector`` forces an UNKNOWN verdict partway
  through the ALU synthesis run; the engine must hand back a
  ``PartialSynthesisResult`` carrying the already-completed instructions,
  and resuming from it must complete a verifying design.
* **worker containment** — the same synthesis under the ``isolated``
  backend with an injected worker crash, hang, and OOM;
  every death must be classified and contained (correct final design, no
  orphaned worker processes).
* **subprocess backend misbehavior** — an external DIMACS solver that
  crashes or prints garbage must degrade to a canonical
  ``unknown(backend-error)`` verdict, never a raw exception or a bogus
  SAT; a well-behaved external solver must still synthesize a verifying
  design.
* **portfolio chaos** — the hedged-racing backend with one member that
  hangs forever and one that crashes intermittently must still complete
  the full synthesis bit-identically, with zero leaked temp files and a
  fully attributed trace; a verdict-flipping member must raise
  ``SoundnessViolation`` (with a ``portfolio.disagreement`` obs event),
  never return a wrong verdict.
* **service journal faults** — the synthesis daemon with injected
  journal write faults must reject submissions with the typed
  ``service.journal`` error (canonical reason ``journal-fault``) and
  never acknowledge a job whose record was not made durable; once the
  fault clears, the same submission must run to a verified ``done``.

Exits non-zero on any violation.

Run: ``PYTHONPATH=src python scripts/fault_injection_smoke.py``
"""

import os
import sys

from repro.designs import alu_machine
from repro.runtime import FaultInjector, SolverWorkerPool
from repro.runtime.reasons import is_canonical
from repro.smt import Solver, terms
from repro.smt.backends import SolverConfig
from repro.smt.backends.subprocess_dimacs import SubprocessDimacsBackend
from repro.synthesis import PartialSynthesisResult, synthesize, verify_design

_FAKE_SOLVER = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "smt", "fake_sat_solver.py",
)


def worker_containment(problem):
    """Isolated execution survives an injected crash, hang, and OOM."""
    pool = SolverWorkerPool(size=2, heartbeat_interval=0.25,
                            mem_limit_mb=512)
    injector = FaultInjector()
    injector.inject_worker_crash(at_request=1)
    injector.inject_worker_hang(at_request=3)
    injector.inject_worker_oom(at_request=5)
    try:
        with injector.installed():
            result = synthesize(
                problem, timeout=300, check_independence=False,
                config=SolverConfig(backend="isolated", worker_pool=pool))
    finally:
        accounting = pool.shutdown()

    fired = [kind for kind, _ in injector.fired]
    assert fired == ["worker:crash", "worker:hang", "worker:oom"], fired
    for name, expected in alu_machine.REFERENCE_HOLE_VALUES.items():
        assert result.hole_values_for(name) == expected, name
    verdict = verify_design(result.completed_design, problem.spec,
                            problem.alpha)
    assert verdict.ok, verdict.summary()
    assert accounting["crashes"] >= 3, accounting
    assert accounting["watchdog_kills"] >= 1, accounting
    assert accounting["spawned"] == accounting["reaped"], accounting
    assert accounting["orphans"] == 0, accounting
    assert not pool.live_pids(), "orphaned worker processes"
    print("worker containment: crash+hang+oom contained, design verifies, "
          f"accounting balanced {accounting}")


def subprocess_backend_misbehavior(problem):
    """A crashing or garbage-printing external solver degrades cleanly."""
    for flag in ("--crash", "--garbage"):
        backend = SubprocessDimacsBackend(
            command=[sys.executable, _FAKE_SOLVER, flag])
        solver = Solver(backend=backend)
        x = terms.bv_var("smoke_x", 8)
        solver.add(terms.bv_eq(x, terms.bv_const(7, 8)))
        verdict = solver.check()
        assert verdict.name == "unknown", (flag, verdict)
        assert verdict.reason == "backend-error", (flag, verdict.reason)
        assert is_canonical(verdict.reason), verdict.reason
        print(f"subprocess backend {flag}: degraded to "
              f"unknown({verdict.reason})")

    # And a *well-behaved* external solver completes real synthesis.
    backend = SubprocessDimacsBackend(command=[sys.executable, _FAKE_SOLVER])
    result = synthesize(problem, timeout=300, check_independence=False,
                        config=SolverConfig(backend=backend))
    for name, expected in alu_machine.REFERENCE_HOLE_VALUES.items():
        assert result.hole_values_for(name) == expected, name
    verdict = verify_design(result.completed_design, problem.spec,
                            problem.alpha)
    assert verdict.ok, verdict.summary()
    assert result.stats["backend"] == "subprocess-dimacs", result.stats
    print("subprocess backend clean: design synthesized externally and "
          "verifies")


def portfolio_chaos(problem, trace_path):
    """Hedged racing survives a hanging and a flaky member, attributed."""
    import glob
    import tempfile
    import threading

    from repro.obs import Tracer, installed
    from repro.obs.report import totals
    from repro.obs.schema import load_events
    from repro.runtime import SoundnessViolation
    from repro.smt.backends import PortfolioBackend

    state_dir = tempfile.mkdtemp(prefix="repro-portfolio-smoke-")
    backend = PortfolioBackend(members=[
        "inprocess",
        SubprocessDimacsBackend(
            command=[sys.executable, _FAKE_SOLVER, "--hang", "60"]),
        SubprocessDimacsBackend(
            command=[sys.executable, _FAKE_SOLVER, "--flaky", "2",
                     "--state-file", os.path.join(state_dir, "flaky")]),
    ])
    tmp_pattern = os.path.join(tempfile.gettempdir(), "repro-dimacs-*")
    tmp_before = set(glob.glob(tmp_pattern))
    tracer = Tracer(trace_path, run_id="portfolio-smoke")
    with installed(tracer):
        result = synthesize(problem, timeout=300, check_independence=False,
                            config=SolverConfig(backend=backend))
    tracer.close()

    for name, expected in alu_machine.REFERENCE_HOLE_VALUES.items():
        assert result.hole_values_for(name) == expected, name
    verdict = verify_design(result.completed_design, problem.spec,
                            problem.alpha)
    assert verdict.ok, verdict.summary()
    assert result.stats["backend"] == "portfolio", result.stats

    leaked = set(glob.glob(tmp_pattern)) - tmp_before
    assert not leaked, f"leaked solver temp dirs: {sorted(leaked)}"
    stragglers = [t.name for t in threading.enumerate()
                  if t.name.startswith("portfolio-")]
    assert not stragglers, f"member threads outlived races: {stragglers}"

    events, _ = load_events(trace_path)
    agg = totals(events)
    assert agg["solver_queries"] > 0, "trace recorded no solver queries"
    assert agg["orphan_queries"] == 0, (
        f"{agg['orphan_queries']} unattributed solver queries")
    assert agg["portfolio_delta"].get("races", 0) > 0, agg["portfolio_delta"]
    print("portfolio chaos: synthesis bit-identical under hang+flaky "
          f"members, {agg['solver_queries']} queries all attributed, "
          f"{agg['portfolio_delta'].get('races')} races, 0 leaks; "
          f"trace at {trace_path}")

    # A verdict-flipping member must trip the disagreement sentinel.
    flip = PortfolioBackend(members=[SubprocessDimacsBackend(
        command=[sys.executable, _FAKE_SOLVER, "--flip"])])
    solver = Solver(backend=flip)
    x = terms.bv_var("flip_x", 8)
    solver.add(terms.bv_eq(x, terms.bv_const(7, 8)))
    try:
        solver.check()
    except SoundnessViolation as exc:
        assert exc.reason == "disagreement", exc.reason
        assert exc.verdicts, "violation carries no member verdicts"
        print(f"portfolio flip: SoundnessViolation raised ({exc.verdicts})")
    else:
        raise AssertionError(
            "a lying member returned a verdict instead of raising")


def service_journal_faults():
    """Journal write faults degrade to typed errors, never lost acks."""
    import tempfile

    from repro.service import JournalFault, SynthesisService

    with tempfile.TemporaryDirectory() as state:
        service = SynthesisService(state, fsync=False)
        service.start()
        try:
            injector = FaultInjector()
            injector.inject_journal_fault(at_append="all")
            with injector.installed():
                # Direct API: the typed fault propagates, nothing is acked.
                try:
                    service.submit("accumulator")
                except JournalFault as fault:
                    assert is_canonical(fault.reason), fault.reason
                    assert fault.reason == "journal-fault", fault.reason
                else:
                    raise AssertionError(
                        "submit acknowledged a job whose journal record "
                        "was never durable")
                # Protocol boundary: the same fault as a typed response.
                response = service.handle_request(
                    {"op": "submit", "design": "accumulator"})
                assert not response["ok"], response
                assert response["error"]["type"] == "service.journal", \
                    response
                assert response["error"]["reason"] == "journal-fault", \
                    response
            assert injector.fired, "the journal fault never fired"
            assert service.stats()["jobs"] == {}, (
                "an un-logged job leaked into the store: "
                f"{service.stats()['jobs']}")
            # Fault cleared: the identical submission completes.
            ack = service.submit("accumulator")
            job = service.wait(ack["job_id"], timeout=120)
            assert job["state"] == "done", job
        finally:
            service.shutdown(timeout=10.0)
    print("service journal faults degraded to typed errors; "
          "post-fault submission completed")


def main():
    problem = alu_machine.build_problem()
    names = [i.name for i in problem.spec.instructions]

    # Calibrate: count facade checks per instruction on a clean run.
    counter = FaultInjector()
    boundaries = {}
    with counter.installed():
        synthesize(problem, timeout=300, check_independence=False,
                   progress=lambda name, _s: boundaries.setdefault(
                       name, counter.check_count))
    first_span_end = boundaries[names[0]]

    # Inject: the first check of the second instruction comes back UNKNOWN.
    injector = FaultInjector().inject_unknown(at_check=first_span_end + 1)
    with injector.installed():
        partial = synthesize(problem, timeout=300, check_independence=False,
                             on_timeout="partial")

    assert isinstance(partial, PartialSynthesisResult), (
        f"expected PartialSynthesisResult, got {type(partial).__name__}")
    assert partial.pending == [names[1]], partial.pending
    assert partial.completed_count == len(names) - 1, partial.summary()
    assert injector.fired, "the planned fault never fired"
    print(partial.summary())

    resumed = synthesize(problem, timeout=300,
                         resume_from=partial.to_dict())
    verdict = verify_design(resumed.completed_design, problem.spec,
                            problem.alpha)
    assert verdict.ok, verdict.summary()
    print(f"resume completed {len(resumed.per_instruction)} instructions; "
          "design verifies")

    worker_containment(problem)
    subprocess_backend_misbehavior(problem)
    trace_path = os.environ.get("REPRO_SMOKE_TRACE",
                                "portfolio_smoke_trace.jsonl")
    portfolio_chaos(problem, trace_path)
    service_journal_faults()
    return 0


if __name__ == "__main__":
    sys.exit(main())
