#!/usr/bin/env python
"""``top`` for the synthesis daemon: live telemetry in the terminal.

Polls a running daemon's ``telemetry`` and ``health`` ops and renders
one frame per interval: health checks, queue/job counters, and the
latency histograms (count, p50/p90/p99, max) the service charges from
``Solver.check`` wall time, CEGIS iterations, admission-queue waits and
per-op request handling.

Usage::

    python scripts/obs_top.py --socket /run/repro/service.sock
    python scripts/obs_top.py --tcp 127.0.0.1:7733
    python scripts/obs_top.py --tcp 127.0.0.1:7733 --once
    python scripts/obs_top.py --tcp 127.0.0.1:7733 --prometheus

``--once`` prints a single frame and exits (what the CI smoke lane
scrapes); ``--prometheus`` dumps the daemon's Prometheus exposition
text verbatim instead of the rendered frame.  Interactive mode clears
the screen between frames; stop with Ctrl-C.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.service.client import ServiceClient, ServiceError  # noqa: E402

#: Counters surfaced in the frame's middle band, in display order.
_COUNTERS = (
    "service.jobs.done",
    "service.jobs.failed",
    "service.jobs.poisoned",
    "service.jobs.drained",
    "service.runner.crashes",
    "service.runner.requeues",
    "service.request.internal_errors",
    "worker.crash_storms",
    "portfolio.races",
    "portfolio.disagreements",
    "incremental.ctx_mismatches",
)


def _fmt_seconds(value):
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:8.3f}s"
    return f"{value * 1000.0:7.2f}ms"


def histogram_lines(metrics):
    """Table lines for every ``hist.<name>`` summary in the snapshot."""
    rows = []
    for key in sorted(metrics):
        if not key.startswith("hist."):
            continue
        summary = metrics[key]
        if not isinstance(summary, dict):
            continue
        rows.append((
            key[len("hist."):],
            summary.get("count", 0),
            summary.get("p50"),
            summary.get("p90"),
            summary.get("p99"),
            summary.get("max"),
        ))
    if not rows:
        return ["  (no histograms yet)"]
    lines = [
        "  {:<28} {:>8}  {:>9}  {:>9}  {:>9}  {:>9}".format(
            "histogram", "count", "p50", "p90", "p99", "max")
    ]
    for name, count, p50, p90, p99, top in rows:
        lines.append(
            "  {:<28} {:>8}  {:>9}  {:>9}  {:>9}  {:>9}".format(
                name, count, _fmt_seconds(p50), _fmt_seconds(p90),
                _fmt_seconds(p99), _fmt_seconds(top))
        )
    return lines


def health_lines(health):
    """One line per typed check, worst first."""
    lines = [
        f"  status: {health['status']}"
        + ("  (draining)" if health.get("draining") else "")
    ]
    checks = health.get("checks", {})
    for name in sorted(checks, key=lambda n: checks[n].get("ok", True)):
        check = checks[name]
        flag = "ok " if check.get("ok") else "DEGRADED"
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(check.items())
            if key != "ok"
        )
        lines.append(f"  [{flag:<8}] {name:<12} {detail}")
    return lines


def render_frame(telemetry, health, stats=None):
    metrics = telemetry.get("metrics", {})
    flight = telemetry.get("flight", {})
    lines = ["health:"]
    lines.extend(health_lines(health))
    lines.append("")
    lines.append("counters:")
    shown = False
    for name in _COUNTERS:
        value = metrics.get(name)
        if value:
            lines.append(f"  {name:<36} {value:>10}")
            shown = True
    if not shown:
        lines.append("  (all zero)")
    if stats:
        jobs = stats.get("jobs", {})
        if jobs:
            states = ", ".join(
                f"{state}={count}" for state, count in sorted(jobs.items()))
            lines.append(f"  jobs by state: {states}")
    lines.append("")
    lines.append("latency histograms:")
    lines.extend(histogram_lines(metrics))
    lines.append("")
    lines.append(
        f"flight recorder: {flight.get('entries', 0)}"
        f"/{flight.get('capacity', 0)} entries, "
        f"{flight.get('dumps', 0)} dump(s)"
    )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--socket", metavar="PATH",
                        help="daemon Unix socket path")
    target.add_argument("--tcp", metavar="HOST:PORT",
                        help="daemon TCP endpoint")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between frames (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit")
    parser.add_argument("--prometheus", action="store_true",
                        help="dump the Prometheus exposition text and exit")
    args = parser.parse_args(argv)

    host = port = None
    if args.tcp:
        host, _, port_text = args.tcp.rpartition(":")
        port = int(port_text)

    def connect():
        return ServiceClient.connect_retry(
            socket_path=args.socket, host=host or None, port=port,
            deadline=5.0)

    with connect() as client:
        if args.prometheus:
            sys.stdout.write(client.telemetry()["prometheus"])
            return 0
        interactive = not args.once and sys.stdout.isatty()
        while True:
            telemetry = client.telemetry()
            health = client.health()
            try:
                stats = client.stats()
            except ServiceError:
                stats = None
            frame = render_frame(telemetry, health, stats)
            if interactive:
                sys.stdout.write("\x1b[2J\x1b[H")
            stamp = time.strftime("%H:%M:%S")
            print(f"repro service telemetry  @ {stamp}")
            print(frame, flush=True)
            if args.once:
                return 0
            time.sleep(args.interval)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(0)
